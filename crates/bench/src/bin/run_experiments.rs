//! Regenerates every table and figure of the paper's evaluation section.
//!
//! ```text
//! cargo run -p xg-bench --release --bin run_experiments -- [experiment] [--full]
//! ```
//!
//! `experiment` is one of `fig9`, `fig10`, `table1`, `table2`, `table3`,
//! `table4`, `fig11`, `fig12`, `stats`, `cache_serving`, `structural_tag`,
//! `engine_jump_forward`, `continuous_batching`, `schema_corpus`,
//! `grammar_lint`, `mask_throughput`, `dynamic_registry`, or `all` (default);
//! `--list` prints the available experiments and exits. `--full` uses the
//! 128k-token vocabulary and larger request counts (slower); `--quick` (the
//! default) uses a 32k vocabulary so the whole suite finishes in a few
//! minutes.

use std::sync::Arc;
use std::time::{Duration, Instant};

use xg_baselines::{BackendSession, ConstrainedBackend, XGrammarBackend};
use xg_bench::{
    ablation_backend, bench_vocabulary, measure_mask_generation, BackendKind, Workload,
};
use xg_core::{
    CompilerConfig, GrammarCache, GrammarCacheConfig, GrammarCompiler, GrammarMatcher, TokenBitmask,
};
use xg_core::{DispatchMode, StructuralTagMatcher};
use xg_engine::{
    run_accuracy_experiment, AccuracyTask, EngineRequest, ExecutionMode, LaneConstraint,
    LlmBehavior, ModelProfile, ServingEngine, SimulatedLlm,
};
use xg_tokenizer::{SortedVocabulary, Vocabulary};

struct Config {
    vocab_size: usize,
    fig9_references: usize,
    engine_requests: usize,
    accuracy_requests: usize,
    schema_corpus_cases: usize,
    time_scale: f64,
}

impl Config {
    fn quick() -> Config {
        Config {
            vocab_size: 32_000,
            fig9_references: 4,
            engine_requests: 4,
            accuracy_requests: 10,
            schema_corpus_cases: 204,
            time_scale: 0.05,
        }
    }

    fn full() -> Config {
        Config {
            vocab_size: 128_000,
            fig9_references: 10,
            engine_requests: 8,
            accuracy_requests: 50,
            schema_corpus_cases: 396,
            time_scale: 1.0,
        }
    }
}

fn fmt_us(d: Duration) -> String {
    format!("{:>10.1}", d.as_secs_f64() * 1e6)
}

fn fmt_ms(d: Duration) -> String {
    format!("{:>8.2}", d.as_secs_f64() * 1e3)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let config = if full {
        Config::full()
    } else {
        Config::quick()
    };
    let which = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "all".to_string());
    // Single source of truth for name validation, `--list` and dispatch.
    type Experiment = fn(&Arc<Vocabulary>, &Config);
    let experiments: [(&str, &str, Experiment); 17] = [
        (
            "stats",
            "preprocessing statistics for the JSON grammar (§3.1–§3.3)",
            |vocab, _| experiment_stats(vocab),
        ),
        ("fig9", "per-token mask generation latency", experiment_fig9),
        ("table3", "ablation study on CFG (JSON)", experiment_table3),
        ("fig10", "end-to-end TPOT vs batch size", experiment_fig10),
        ("table1", "TPOT across models", experiment_table1),
        (
            "table2",
            "TPOT with and without XGrammar",
            experiment_table2,
        ),
        ("table4", "syntactic accuracy", experiment_table4),
        ("fig11", "jump-forward decoding", experiment_fig11),
        ("fig12", "cross-platform TTFT/TPOT", experiment_fig12),
        (
            "cache_serving",
            "compiled-grammar cache + parallel batch mask generation (§5)",
            experiment_cache_serving,
        ),
        (
            "structural_tag",
            "tag dispatch: tool-call segments, jump-forward, trigger-scan throughput",
            experiment_structural_tag,
        ),
        (
            "engine_jump_forward",
            "jump-forward wired into the serving decode loop (differential, PASS-gated)",
            experiment_engine_jump_forward,
        ),
        (
            "continuous_batching",
            "request scheduler with mid-batch join/leave (differential, PASS-gated)",
            experiment_continuous_batching,
        ),
        (
            "schema_corpus",
            "JSON-Schema conformance corpus by converter feature (PASS-gated)",
            experiment_schema_corpus,
        ),
        (
            "grammar_lint",
            "static-analysis lint: pathological corpus, clean schemas, strict admission (PASS-gated)",
            experiment_grammar_lint,
        ),
        (
            "mask_throughput",
            "mask tokens/sec at 32k/128k/256k vocab, word kernels vs per-token serial (PASS-gated)",
            experiment_mask_throughput,
        ),
        (
            "dynamic_registry",
            "mutating tool registries: incremental dispatch updates, shared sub-grammar cache, bounded dispatch LRU (PASS-gated)",
            experiment_dynamic_registry,
        ),
    ];
    if args.iter().any(|a| a == "--list") {
        println!("available experiments:");
        println!("  {:<14} run every experiment below (default)", "all");
        for (name, description, _) in experiments {
            println!("  {name:<14} {description}");
        }
        return;
    }
    if which != "all" && !experiments.iter().any(|(name, _, _)| *name == which) {
        let names: Vec<&str> = std::iter::once("all")
            .chain(experiments.iter().map(|(name, _, _)| *name))
            .collect();
        eprintln!(
            "unknown experiment `{which}`; expected one of: {} (see --list)",
            names.join(", ")
        );
        std::process::exit(2);
    }

    println!("# XGrammar reproduction — experiment harness");
    println!(
        "vocabulary: {} tokens (synthetic Llama-3.1-like), mode: {}",
        config.vocab_size,
        if full { "full" } else { "quick" }
    );
    let vocab = bench_vocabulary(config.vocab_size);
    println!();

    for (name, _, experiment) in experiments {
        if which == "all" || which == name {
            experiment(&vocab, &config);
        }
    }
}

/// §3.1–§3.3 headline statistics for the JSON grammar.
fn experiment_stats(vocab: &Arc<Vocabulary>) {
    println!("## Preprocessing statistics (paper §3.1–§3.3, JSON grammar)");
    let compiler = GrammarCompiler::new(Arc::clone(vocab));
    let compiled = compiler.compile_builtin_json();
    let stats = compiled.stats();
    let sorted = compiled.sorted_vocabulary();
    println!("  automaton nodes                        : {}", stats.nodes);
    println!(
        "  context-dependent tokens (worst node)  : {} / {} ({:.2}%)",
        stats.max_context_dependent_per_node,
        stats.classified_tokens,
        100.0 * stats.max_context_dependent_per_node as f64 / stats.classified_tokens.max(1) as f64
    );
    println!(
        "  context-dependent before -> after context expansion (sum over nodes): {} -> {} ({:.0}% removed)",
        stats.context_dependent_before_expansion,
        stats.context_dependent_after_expansion,
        100.0 * stats.expansion_reduction()
    );
    println!(
        "  mask cache memory: adaptive {:.3} MB vs dense {:.3} MB ({:.2}% of dense)",
        stats.memory_bytes as f64 / 1e6,
        stats.dense_memory_bytes as f64 / 1e6,
        100.0 * stats.memory_ratio()
    );
    println!(
        "  preprocessing characters matched vs naive: {:.0}% (sorted-prefix rollback, §3.3)",
        100.0 * stats.preprocessing_check_fraction()
    );
    println!(
        "  vocabulary prefix-sharing fraction (chars to check): {:.0}%",
        100.0 * sorted.check_fraction()
    );
    println!(
        "  preprocessing wall-clock time: {:.1} ms",
        compiled.preprocessing_time().as_secs_f64() * 1e3
    );
    println!();
}

/// Figure 9: per-token mask generation latency.
fn experiment_fig9(vocab: &Arc<Vocabulary>, config: &Config) {
    println!("## Figure 9 — per-token mask generation latency (us/token)");
    println!(
        "{:<28} {:>11} {:>11} {:>11} {:>11}",
        "workload", "XGrammar", "Outlines", "llama.cpp", "lm-fmt-enf"
    );
    for workload in Workload::all() {
        let mut row = format!("{:<28}", workload.name());
        for kind in BackendKind::all() {
            let backend = kind.build(Arc::clone(vocab));
            let result = measure_mask_generation(&backend, workload, config.fig9_references, 40);
            match result {
                Some(m) => row.push_str(&format!(" {}", fmt_us(m.per_token))),
                None => row.push_str(&format!(" {:>10}", "unsupported")),
            }
        }
        println!("{row}");
    }
    println!();
}

/// Table 3: ablation of the optimization techniques on CFG (JSON).
fn experiment_table3(vocab: &Arc<Vocabulary>, config: &Config) {
    println!("## Table 3 — ablation study, per-token mask latency on CFG (JSON)");
    let mut previous: Option<Duration> = None;
    for step in 0..5 {
        let (name, backend) = ablation_backend(Arc::clone(vocab), step);
        let m = measure_mask_generation(&backend, Workload::CfgJson, config.fig9_references, 30)
            .expect("XGrammar handles every workload");
        let speedup = previous
            .map(|p| {
                format!(
                    "({:.1}x vs previous)",
                    p.as_secs_f64() / m.per_token.as_secs_f64().max(1e-9)
                )
            })
            .unwrap_or_default();
        println!(
            "  {:<30} {} us/token {}",
            name,
            fmt_us(m.per_token),
            speedup
        );
        previous = Some(m.per_token);
    }
    println!();
}

fn schema_requests(count: usize) -> Vec<EngineRequest> {
    xg_datasets::json_mode_eval_like(count, 0xE2E)
        .into_iter()
        .enumerate()
        .map(|(i, t)| EngineRequest {
            constraint: LaneConstraint::Grammar(
                xg_grammar::json_schema_to_grammar(&t.schema).expect("schema converts"),
            ),
            prompt_tokens: 139,
            reference: t.reference,
            max_tokens: 120,
            seed: i as u64,
        })
        .collect()
}

fn cfg_requests(count: usize) -> Vec<EngineRequest> {
    xg_datasets::json_documents(count, 0xE2E)
        .into_iter()
        .enumerate()
        .map(|(i, t)| EngineRequest {
            constraint: LaneConstraint::Grammar(xg_grammar::builtin::json_grammar()),
            prompt_tokens: 139,
            reference: t.reference,
            max_tokens: 160,
            seed: i as u64,
        })
        .collect()
}

/// Figure 10: end-to-end TPOT vs batch size for different engines.
fn experiment_fig10(vocab: &Arc<Vocabulary>, config: &Config) {
    println!("## Figure 10 — end-to-end TPOT (ms) vs batch size, Llama-3.1-8B profile");
    let profile = ModelProfile::llama31_8b_h100().scaled(config.time_scale);
    println!(
        "  (simulated GPU, time scale {}; compare engines within a column)",
        config.time_scale
    );
    for (task_name, base_requests) in [
        ("JSON Schema", schema_requests(config.engine_requests)),
        ("CFG (JSON)", cfg_requests(config.engine_requests)),
    ] {
        println!("  {task_name}:");
        println!(
            "    {:<28} {:>10} {:>10} {:>10}",
            "engine", "batch=1", "batch=8", "batch=16"
        );
        let engines: Vec<(&str, Arc<dyn ConstrainedBackend>, ExecutionMode)> = vec![
            (
                "llama.cpp (serial)",
                Arc::new(xg_baselines::NaivePdaBackend::new(Arc::clone(vocab))),
                ExecutionMode::Serial,
            ),
            (
                "vLLM w/ Outlines (serial)",
                Arc::new(xg_baselines::FsmIndexBackend::with_limits(
                    Arc::clone(vocab),
                    6,
                    400_000,
                )),
                ExecutionMode::Serial,
            ),
            (
                "SGLang w/ XGrammar",
                Arc::new(XGrammarBackend::new(Arc::clone(vocab))),
                ExecutionMode::Overlapped,
            ),
            (
                "XGrammar Engine",
                Arc::new(XGrammarBackend::new(Arc::clone(vocab))),
                ExecutionMode::Overlapped,
            ),
        ];
        for (name, backend, mode) in engines {
            let mut row = format!("    {:<28}", name);
            for batch in [1usize, 8, 16] {
                let mut requests = Vec::new();
                while requests.len() < batch {
                    requests.extend(base_requests.iter().cloned());
                }
                requests.truncate(batch);
                let engine = ServingEngine::new(Arc::clone(&backend), profile.clone(), mode);
                match engine.run_batch(&requests) {
                    Ok((_, metrics)) => row.push_str(&format!(" {}", fmt_ms(metrics.tpot))),
                    Err(_) => row.push_str(&format!(" {:>8}", "unsup.")),
                }
            }
            println!("{row}");
        }
    }
    println!();
}

/// Table 1: TPOT across models (SGLang + Outlines vs SGLang + XGrammar).
fn experiment_table1(vocab: &Arc<Vocabulary>, config: &Config) {
    println!("## Table 1 — TPOT (ms) across models on the JSON Schema task");
    let requests = schema_requests(config.engine_requests.max(4));
    for profile in [
        ModelProfile::llama31_8b_h100().scaled(config.time_scale),
        ModelProfile::deepseek_v2_lite_h100().scaled(config.time_scale),
    ] {
        let outlines: Arc<dyn ConstrainedBackend> = Arc::new(
            xg_baselines::FsmIndexBackend::with_limits(Arc::clone(vocab), 6, 400_000),
        );
        let xgrammar: Arc<dyn ConstrainedBackend> =
            Arc::new(XGrammarBackend::new(Arc::clone(vocab)));
        let tpot_outlines = ServingEngine::new(outlines, profile.clone(), ExecutionMode::Serial)
            .run_batch(&requests)
            .map(|(_, m)| m.tpot)
            .unwrap_or(Duration::ZERO);
        let tpot_xgrammar =
            ServingEngine::new(xgrammar, profile.clone(), ExecutionMode::Overlapped)
                .run_batch(&requests)
                .expect("xgrammar backend always compiles")
                .1
                .tpot;
        println!(
            "  {:<38} SGLang+Outlines {} ms   SGLang+XGrammar {} ms",
            profile.name,
            fmt_ms(tpot_outlines),
            fmt_ms(tpot_xgrammar)
        );
    }
    println!();
}

/// Table 2: TPOT with and without XGrammar on the MLC-LLM-style engine.
fn experiment_table2(vocab: &Arc<Vocabulary>, config: &Config) {
    println!("## Table 2 — TPOT (ms) with and without XGrammar (overlapped engine)");
    let profile = ModelProfile::llama31_8b_h100().scaled(config.time_scale);
    let backend: Arc<dyn ConstrainedBackend> = Arc::new(XGrammarBackend::new(Arc::clone(vocab)));
    for (task, requests) in [
        ("JSON Schema", schema_requests(config.engine_requests)),
        ("CFG (JSON)", cfg_requests(config.engine_requests)),
    ] {
        for batch in [1usize, 8] {
            let mut batch_requests = Vec::new();
            while batch_requests.len() < batch {
                batch_requests.extend(requests.iter().cloned());
            }
            batch_requests.truncate(batch);
            let unconstrained: Vec<EngineRequest> = batch_requests
                .iter()
                .cloned()
                .map(|mut r| {
                    r.constraint = LaneConstraint::Unconstrained;
                    r
                })
                .collect();
            let engine = ServingEngine::new(
                Arc::clone(&backend),
                profile.clone(),
                ExecutionMode::Overlapped,
            );
            let without = engine.run_batch(&unconstrained).expect("runs").1.tpot;
            let with = engine.run_batch(&batch_requests).expect("runs").1.tpot;
            println!(
                "  {:<14} batch {:>2}: TPOT w/o XGrammar {} ms   w/ XGrammar {} ms",
                task,
                batch,
                fmt_ms(without),
                fmt_ms(with)
            );
        }
    }
    println!();
}

/// Table 4: syntactic accuracy with and without constrained decoding.
fn experiment_table4(vocab: &Arc<Vocabulary>, config: &Config) {
    println!("## Table 4 — syntactic accuracy of structured generation tasks");
    for (name, task) in [
        (
            "Function calling (JSON Schema)",
            AccuracyTask::FunctionCalling,
        ),
        ("XML code generation", AccuracyTask::XmlGeneration),
    ] {
        let result = run_accuracy_experiment(
            Arc::clone(vocab),
            task,
            config.accuracy_requests,
            LlmBehavior::default(),
        );
        println!(
            "  {:<32} accuracy w/o XGrammar {:>5.0}%   w/ XGrammar {:>5.0}%",
            name,
            100.0 * result.unconstrained_accuracy(),
            100.0 * result.constrained_accuracy()
        );
    }
    println!();
}

/// Figure 11: jump-forward decoding combined with constrained decoding.
fn experiment_fig11(vocab: &Arc<Vocabulary>, config: &Config) {
    println!("## Figure 11 — time per output token (ms) with and without jump-forward decoding");
    let profile = ModelProfile::llama31_8b_h100().scaled(config.time_scale);
    let tasks = xg_datasets::json_mode_eval_like(config.engine_requests.max(4), 0x11F);
    let compiler = GrammarCompiler::new(Arc::clone(vocab));
    let llm = SimulatedLlm::new(
        Arc::clone(vocab),
        LlmBehavior {
            prose_probability: 0.0,
            type_error_probability: 0.0,
            seed: 0,
        },
    );

    for (label, use_jump_forward) in [("w/o jump-forward", false), ("w/ jump-forward", true)] {
        let mut total_time = Duration::ZERO;
        let mut total_sampled = 0usize;
        let mut total_output_tokens = 0usize;
        for (i, task) in tasks.iter().enumerate() {
            let compiled = compiler
                .compile_json_schema(&task.schema)
                .expect("schema converts");
            let mut matcher = GrammarMatcher::new(compiled);
            let mut state = llm.start_request(&task.reference, i as u64);
            let mut mask = TokenBitmask::new_all_rejected(vocab.len());
            let start = Instant::now();
            let mut sampled = 0usize;
            let mut output_tokens = 0usize;
            while sampled < 200 {
                if use_jump_forward {
                    let jump = matcher.find_jump_forward_string();
                    if !jump.is_empty() && matcher.accept_bytes(&jump).is_ok() {
                        state.advance_bytes(&jump);
                        // The jumped text still counts as output tokens but
                        // needs no GPU decoding step.
                        output_tokens += jump.len().div_ceil(4).max(1);
                    }
                }
                matcher.fill_next_token_bitmask(&mut mask);
                let Some(token) = state.propose_constrained(&mask) else {
                    break;
                };
                // Each sampled token pays one simulated GPU decoding step.
                std::thread::sleep(profile.decode_step_time(1));
                sampled += 1;
                output_tokens += 1;
                if Some(token) == vocab.eos() {
                    break;
                }
                if matcher.accept_token(token).is_err() {
                    break;
                }
                state.advance(token);
            }
            total_time += start.elapsed();
            total_sampled += sampled;
            total_output_tokens += output_tokens.max(1);
        }
        println!(
            "  XGrammar {:<18}: {:.2} ms per output token ({} sampled of {} output tokens)",
            label,
            total_time.as_secs_f64() * 1e3 / total_output_tokens as f64,
            total_sampled,
            total_output_tokens
        );
    }
    println!();
}

/// Serving concurrency layer (§5): shared compiled-grammar cache plus
/// parallel per-lane mask generation on a large batch.
fn experiment_cache_serving(vocab: &Arc<Vocabulary>, config: &Config) {
    println!("## Cache serving — compiled-grammar cache + parallel batch mask generation");
    let batch = 32.max(config.engine_requests);
    let profile = ModelProfile::llama31_8b_h100().scaled(config.time_scale);

    // ---- Part 1: compiled-grammar cache on a 5-schema-family batch. ----
    let requests = schema_requests(batch);
    let cache = Arc::new(GrammarCache::new(GrammarCacheConfig::default()));
    let backend: Arc<dyn ConstrainedBackend> = Arc::new(XGrammarBackend::with_cache(
        Arc::clone(vocab),
        CompilerConfig::default(),
        Arc::clone(&cache),
    ));
    let engine = ServingEngine::new(Arc::clone(&backend), profile.clone(), ExecutionMode::Serial);
    println!("  XGrammar engine, batch of {batch} requests over 5 schema families:");
    for label in ["cold cache", "warm cache"] {
        let (_, metrics) = engine.run_batch(&requests).expect("schemas compile");
        println!(
            "    {:<10} hit rate {:>3.0}% ({} hits / {} misses), {} cached grammars, {:.2} MB",
            label,
            100.0 * metrics.cache.hit_rate(),
            metrics.cache.hits,
            metrics.cache.misses,
            metrics.cache.entries,
            metrics.cache.current_bytes as f64 / 1e6,
        );
    }

    // ---- Part 2: serial vs parallel batch mask generation wall clock. ----
    // The naive full-scan backend makes per-lane mask work heavy enough that
    // the wall-clock effect of parallel lane fill is unmistakable; the cached
    // XGrammar rows show the same comparison on the fast path.
    println!("  mask-generation wall clock, batch of {batch} requests:");
    let backends: Vec<(&str, Arc<dyn ConstrainedBackend>, Vec<EngineRequest>)> = vec![
        ("XGrammar (cached)", Arc::clone(&backend), requests.clone()),
        (
            "naive PDA scan",
            Arc::new(xg_baselines::NaivePdaBackend::new(Arc::clone(vocab))),
            requests
                .iter()
                .cloned()
                .map(|mut r| {
                    // The naive baseline pays a full vocabulary scan per lane
                    // per round; cap the rounds to keep the experiment short.
                    r.max_tokens = 4;
                    r
                })
                .collect(),
        ),
    ];
    for (name, backend, requests) in backends {
        let mut wall = Vec::new();
        for threads in [1usize, 0] {
            let engine =
                ServingEngine::new(Arc::clone(&backend), profile.clone(), ExecutionMode::Serial)
                    .with_mask_parallelism(threads);
            let (_, metrics) = engine.run_batch(&requests).expect("grammars compile");
            wall.push((metrics.mask_time, metrics.mask_threads));
        }
        let (serial, _) = wall[0];
        let (parallel, threads) = wall[1];
        println!(
            "    {:<18} serial {} ms vs parallel {} ms on {} threads ({:.2}x wall-clock speedup)",
            name,
            fmt_ms(serial),
            fmt_ms(parallel),
            threads,
            serial.as_secs_f64() / parallel.as_secs_f64().max(1e-9),
        );
    }
    println!();
}

/// Counters of one matcher-level decode pass over the tool-call transcripts.
#[derive(Debug, Default)]
struct TagDecodeSummary {
    free_mask_time: Duration,
    tag_mask_time: Duration,
    free_steps: u64,
    tag_steps: u64,
    sampled_tokens: u64,
    jump_bytes: u64,
    jump_events: u64,
    segments_checked: usize,
    segments_conformant: usize,
    tokens_conformant: bool,
}

/// Decodes every task transcript through a [`StructuralTagMatcher`],
/// optionally jumping forward over forced bytes inside tagged segments, and
/// checks segment/token conformance against the standalone sub-grammars.
fn decode_tool_call_tasks(
    vocab: &Arc<Vocabulary>,
    compiler: &GrammarCompiler,
    llm: &SimulatedLlm,
    tasks: &[xg_datasets::ToolCallTask],
    use_jump_forward: bool,
) -> TagDecodeSummary {
    let mut summary = TagDecodeSummary {
        tokens_conformant: true,
        ..Default::default()
    };
    let mut mask = TokenBitmask::new_all_rejected(vocab.len());
    for (i, task) in tasks.iter().enumerate() {
        let tag = task.structural_tag();
        let compiled = compiler
            .compile_tag_dispatch(&tag)
            .expect("task tags compile");
        let mut matcher = StructuralTagMatcher::new(Arc::clone(&compiled));
        let mut state = llm.start_request(&task.reference, i as u64);
        let mut output = Vec::new();
        for _ in 0..600 {
            if use_jump_forward {
                // Forced bytes inside a tagged segment (begin-tag remainder,
                // schema punctuation and keys, the end tag) need no GPU step.
                let jump = matcher.find_jump_forward_string();
                if !jump.is_empty() && matcher.accept_bytes(&jump).is_ok() {
                    state.advance_bytes(&jump);
                    output.extend_from_slice(&jump);
                    summary.jump_bytes += jump.len() as u64;
                    summary.jump_events += 1;
                }
            }
            let mode = matcher.mode();
            let start = Instant::now();
            matcher.fill_next_token_bitmask(&mut mask);
            let elapsed = start.elapsed();
            match mode {
                DispatchMode::FreeText => {
                    summary.free_mask_time += elapsed;
                    summary.free_steps += 1;
                }
                DispatchMode::Tagged { .. } => {
                    summary.tag_mask_time += elapsed;
                    summary.tag_steps += 1;
                }
            }
            let Some(token) = state.propose_constrained(&mask) else {
                break;
            };
            summary.sampled_tokens += 1;
            // Token-by-token conformance: the sampled token must have been
            // allowed by the mask of the current mode.
            if !mask.is_allowed(token) {
                summary.tokens_conformant = false;
            }
            if Some(token) == vocab.eos() {
                matcher.accept_token(token).expect("EOS in free text");
                break;
            }
            if matcher.accept_token(token).is_err() {
                summary.tokens_conformant = false;
                break;
            }
            output.extend_from_slice(vocab.token_bytes(token));
            state.advance(token);
        }
        // Tag-segment conformance: every emitted segment must match its
        // function's standalone sub-grammar (schema + name + end tag).
        let text = String::from_utf8_lossy(&output).to_string();
        for segment in text.split(xg_datasets::TOOL_CALL_TRIGGER).skip(1) {
            summary.segments_checked += 1;
            let Some((name, rest)) = segment.split_once('>') else {
                continue;
            };
            // A segment with no closing tag (output truncated mid-call)
            // counts as checked but not conformant.
            let Some((payload, _)) = rest.split_once(xg_datasets::TOOL_CALL_END) else {
                continue;
            };
            let schema = task
                .functions
                .iter()
                .find(|f| f.name == name)
                .map(|f| &f.schema);
            let ok = schema.is_some_and(|schema| {
                let grammar = xg_grammar::json_schema_to_grammar(schema).expect("schema converts");
                let mut standalone = GrammarMatcher::new(compiler.compile_grammar(&grammar));
                standalone.accept_bytes(payload.as_bytes()).is_ok() && standalone.can_terminate()
            });
            summary.segments_conformant += usize::from(ok);
        }
    }
    summary
}

/// Structural tags: a mixed prose/tool-call batch through the serving
/// engine, plus a direct matcher-level study of free-text passthrough
/// overhead, tag-segment conformance, jump-forward savings inside tagged
/// segments, trigger-scan throughput, and rollback across tag boundaries.
fn experiment_structural_tag(vocab: &Arc<Vocabulary>, config: &Config) {
    println!("## Structural tags — tag dispatch for agentic tool calling");
    let count = config.engine_requests.max(4);
    let tasks = xg_datasets::tool_call_tasks(count, 0x7A9);
    let compiler = GrammarCompiler::new(Arc::clone(vocab));
    let llm = SimulatedLlm::new(
        Arc::clone(vocab),
        LlmBehavior {
            prose_probability: 0.0,
            type_error_probability: 0.0,
            seed: 0,
        },
    );

    // ---- Part 1: matcher-level decode over the mixed transcripts. ----
    let base = decode_tool_call_tasks(vocab, &compiler, &llm, &tasks, false);
    println!(
        "  free-text steps : {:>6}  avg mask fill {:>8.0} ns (all-allowed passthrough)",
        base.free_steps,
        base.free_mask_time.as_nanos() as f64 / base.free_steps.max(1) as f64
    );
    println!(
        "  tagged steps    : {:>6}  avg mask fill {:>8.0} ns (constrained decode)",
        base.tag_steps,
        base.tag_mask_time.as_nanos() as f64 / base.tag_steps.max(1) as f64
    );
    println!(
        "  tool-call segments conformant to their sub-grammar: {}/{}",
        base.segments_conformant, base.segments_checked
    );
    println!(
        "  token-by-token mask conformance: {}",
        if base.tokens_conformant {
            "PASS"
        } else {
            "FAIL"
        }
    );

    // ---- Part 2: jump-forward decoding inside tagged segments. ----
    let jumped = decode_tool_call_tasks(vocab, &compiler, &llm, &tasks, true);
    let saved_tokens = base.sampled_tokens.saturating_sub(jumped.sampled_tokens);
    println!(
        "  jump-forward in tagged segments: {} chars over {} jumps, {} -> {} sampled tokens ({} saved, {})",
        jumped.jump_bytes,
        jumped.jump_events,
        base.sampled_tokens,
        jumped.sampled_tokens,
        saved_tokens,
        if jumped.jump_bytes > 0
            && jumped.segments_conformant == jumped.segments_checked
            && jumped.tokens_conformant
        {
            "PASS"
        } else {
            "FAIL"
        }
    );

    // ---- Part 3: trigger-scan throughput on a 120-trigger catalog. ----
    let (catalog, transcript) = xg_bench::trigger_scan_fixture(120, 1 << 19);
    let naive = xg_automata::NaiveMultiPattern::new(&catalog);
    let ac = xg_automata::AhoCorasick::new(&catalog);
    let start = Instant::now();
    let naive_matches = naive.find_all(&transcript);
    let naive_time = start.elapsed();
    let start = Instant::now();
    let ac_matches = ac.find_all(&transcript);
    let ac_time = start.elapsed();
    assert_eq!(naive_matches, ac_matches, "scanners must agree");
    let mb = transcript.len() as f64 / 1e6;
    println!(
        "  trigger scan, {} triggers over {:.1} MB ({} matches): naive {:>7.1} MB/s vs aho-corasick {:>7.1} MB/s ({:.1}x)",
        catalog.len(),
        mb,
        ac_matches.len(),
        mb / naive_time.as_secs_f64().max(1e-9),
        mb / ac_time.as_secs_f64().max(1e-9),
        naive_time.as_secs_f64() / ac_time.as_secs_f64().max(1e-9)
    );

    // ---- Part 4: rollback across a tag boundary. ----
    let task = &tasks[0];
    let compiled = compiler
        .compile_tag_dispatch(&task.structural_tag())
        .expect("task tags compile");
    let mut matcher = StructuralTagMatcher::new(compiled);
    let mut mask = TokenBitmask::new_all_rejected(vocab.len());
    let mut pre_tag_mask = TokenBitmask::new_all_rejected(vocab.len());
    matcher.accept_bytes(b"prose before the call").unwrap();
    matcher.fill_next_token_bitmask(&mut pre_tag_mask);
    let begin = task.functions[0].begin_tag();
    matcher.accept_bytes(begin.as_bytes()).unwrap(); // unit 2: opens the tag
    matcher.accept_bytes(b"{").unwrap(); // unit 3: inside the segment
    let in_tag = matches!(matcher.mode(), DispatchMode::Tagged { .. });
    matcher.rollback(2).unwrap(); // back across the boundary
    matcher.fill_next_token_bitmask(&mut mask);
    let restored = matcher.mode() == DispatchMode::FreeText && mask == pre_tag_mask;
    println!(
        "  rollback across tag boundary restores pre-tag state: {}",
        if in_tag && restored { "PASS" } else { "FAIL" }
    );

    // ---- Part 5: the serving engine on a mixed prose/tool-call batch. ----
    let profile = ModelProfile::llama31_8b_h100().scaled(config.time_scale);
    let requests: Vec<EngineRequest> = tasks
        .iter()
        .enumerate()
        .map(|(i, t)| EngineRequest {
            constraint: LaneConstraint::StructuralTag(t.structural_tag()),
            prompt_tokens: 139,
            reference: t.reference.clone(),
            max_tokens: 400,
            seed: i as u64,
        })
        .collect();
    let fully_constrained = schema_requests(count);
    let backend: Arc<dyn ConstrainedBackend> = Arc::new(XGrammarBackend::new(Arc::clone(vocab)));
    let engine = ServingEngine::new(backend, profile, ExecutionMode::Overlapped);
    let (results, tag_metrics) = engine.run_batch(&requests).expect("tag batch runs");
    let (_, constrained_metrics) = engine
        .run_batch(&fully_constrained)
        .expect("constrained batch runs");
    let completed = results.iter().filter(|r| r.completed).count();
    println!(
        "  engine batch of {count} mixed lanes: {completed}/{count} completed, TPOT {} ms, mask time {} ms",
        fmt_ms(tag_metrics.tpot),
        fmt_ms(tag_metrics.mask_time)
    );
    println!(
        "  fully-constrained JSON-schema batch for comparison: TPOT {} ms, mask time {} ms",
        fmt_ms(constrained_metrics.tpot),
        fmt_ms(constrained_metrics.mask_time)
    );
    println!();
}

/// Engine-level jump-forward (the serving-loop version of Figure 11): a
/// schema-heavy batch plus a mixed prose/tool-call batch run under every
/// [`xg_engine::JumpForwardPolicy`], with a differential PASS gate —
/// byte-identical per-lane outputs and at least 10% fewer sampled tokens
/// than the `Off` path on the schema-heavy batch.
fn experiment_engine_jump_forward(vocab: &Arc<Vocabulary>, config: &Config) {
    use xg_engine::JumpForwardPolicy;

    println!("## Engine jump-forward — forced tokens injected in the serving decode loop");
    let profile = ModelProfile::llama31_8b_h100().scaled(config.time_scale);
    let count = config.engine_requests.max(4);
    let backend: Arc<dyn ConstrainedBackend> = Arc::new(XGrammarBackend::new(Arc::clone(vocab)));
    let run = |requests: &[EngineRequest], policy: JumpForwardPolicy| {
        ServingEngine::new(
            Arc::clone(&backend),
            profile.clone(),
            ExecutionMode::Overlapped,
        )
        .with_jump_forward(policy)
        .run_batch(requests)
        .expect("batch runs")
    };

    // ---- Schema-heavy batch: long forced keys, the paper's Fig. 11 case. ----
    let requests = schema_requests(count);
    // Warm the compiled-grammar cache so the first policy row is not charged
    // for compilation the later rows get for free.
    let _ = run(&requests, JumpForwardPolicy::Off);
    let policies = [
        ("Off", JumpForwardPolicy::Off),
        ("Matcher", JumpForwardPolicy::Matcher),
        ("Engine", JumpForwardPolicy::Engine),
    ];
    let mut outcomes = Vec::new();
    println!("  schema-heavy batch of {count} lanes:");
    for (label, policy) in policies {
        let (results, metrics) = run(&requests, policy);
        // Figure 11's y axis: wall clock per *output* token — forced text is
        // output too, it just skips the GPU step. The Matcher policy injects
        // raw byte runs (no token count), so its forced output is estimated
        // at ~4 bytes/token like the fig11 harness does.
        let forced_output = if metrics.jump_forward_tokens > 0 {
            metrics.jump_forward_tokens
        } else {
            metrics.jump_forward_chars.div_ceil(4)
        };
        let output_tokens = metrics.total_tokens + forced_output;
        println!(
            "    {:<8} {:>5} sampled + {:>4} forced tokens ({:>4} forced chars), \
             total {} ms, TPOT(sampled) {} ms, {:.3} ms/output-token",
            label,
            metrics.total_tokens,
            metrics.jump_forward_tokens,
            metrics.jump_forward_chars,
            fmt_ms(metrics.total_time),
            fmt_ms(metrics.tpot),
            metrics.total_time.as_secs_f64() * 1e3 / output_tokens.max(1) as f64,
        );
        outcomes.push((policy, results, metrics));
    }
    let (_, off_results, off_metrics) = &outcomes[0];
    let (_, engine_results, engine_metrics) = &outcomes[2];
    let parity = outcomes.iter().all(|(_, results, _)| {
        results
            .iter()
            .zip(off_results.iter())
            .all(|(a, b)| a.output == b.output)
    });
    let saved = off_metrics
        .total_tokens
        .saturating_sub(engine_metrics.total_tokens);
    let reduction = saved as f64 / off_metrics.total_tokens.max(1) as f64;
    println!(
        "    sampled-token reduction vs Off: {saved} of {} ({:.1}%)",
        off_metrics.total_tokens,
        100.0 * reduction
    );

    // ---- Mixed prose/tool-call batch: forced text inside tagged segments. ----
    let tool_requests: Vec<EngineRequest> = xg_datasets::tool_call_tasks(count, 0x7A9)
        .iter()
        .enumerate()
        .map(|(i, t)| EngineRequest {
            constraint: LaneConstraint::StructuralTag(t.structural_tag()),
            prompt_tokens: 139,
            reference: t.reference.clone(),
            max_tokens: 400,
            seed: i as u64,
        })
        .collect();
    let _ = run(&tool_requests, JumpForwardPolicy::Off); // cache warmup
    let (mixed_off, mixed_off_metrics) = run(&tool_requests, JumpForwardPolicy::Off);
    let (mixed_engine, mixed_engine_metrics) = run(&tool_requests, JumpForwardPolicy::Engine);
    let mixed_parity = mixed_off
        .iter()
        .zip(&mixed_engine)
        .all(|(a, b)| a.output == b.output);
    println!(
        "  mixed tool-call batch of {count} lanes: {} -> {} sampled tokens ({} forced), parity {}",
        mixed_off_metrics.total_tokens,
        mixed_engine_metrics.total_tokens,
        mixed_engine_metrics.jump_forward_tokens,
        if mixed_parity { "ok" } else { "BROKEN" }
    );

    // ---- The differential gate enforced by CI. ----
    let pass = parity
        && mixed_parity
        && engine_metrics.jump_forward_tokens > 0
        && reduction >= 0.10
        && engine_results
            .iter()
            .all(|r| r.tokens + r.jump_forward_tokens > 0);
    println!(
        "  jump-forward differential (byte-identical outputs, >=10% fewer sampled tokens): {}",
        if pass { "PASS" } else { "FAIL" }
    );
    println!();
}

/// The continuous-batching serving core: requests join a running batch
/// mid-decode, grammars compile off the hot path on admission workers, and
/// mask generation overlaps the simulated GPU phase. Two PASS gates guard
/// the refactor: `run_batch` (now a thin wrapper over the scheduler) stays
/// byte-identical to the retained fixed loop, and a late-arriving request
/// whose grammar is already cached reaches its first token faster than the
/// fixed-batch TTFT bound (whole-batch prefill + compile).
fn experiment_continuous_batching(vocab: &Arc<Vocabulary>, config: &Config) {
    use xg_engine::SchedulerConfig;

    println!("## Continuous batching — scheduler with mid-batch join/leave");
    let profile = ModelProfile::llama31_8b_h100().scaled(config.time_scale);
    let backend: Arc<dyn ConstrainedBackend> = Arc::new(XGrammarBackend::new(Arc::clone(vocab)));
    let engine = ServingEngine::new(
        Arc::clone(&backend),
        profile.clone(),
        ExecutionMode::Overlapped,
    );

    // ---- Part 1: differential parity with the fixed-batch reference. ----
    let count = config.engine_requests.max(8);
    let requests = schema_requests(count);
    let _ = engine.run_batch_fixed(&requests).expect("cache warmup");
    let (fixed, fixed_metrics) = engine.run_batch_fixed(&requests).expect("fixed batch");
    let (scheduled, sched_metrics) = engine.run_batch(&requests).expect("scheduled batch");
    let parity = fixed
        .iter()
        .zip(&scheduled)
        .all(|(a, b)| a.output == b.output);
    println!(
        "  {count}-lane schema batch: fixed loop {} ms vs scheduler {} ms, \
         {} sampled + {} forced tokens, parity {}",
        fmt_ms(fixed_metrics.total_time),
        fmt_ms(sched_metrics.total_time),
        sched_metrics.total_tokens,
        sched_metrics.jump_forward_tokens,
        if parity { "ok" } else { "BROKEN" }
    );

    // ---- Part 2: a late join on a warm grammar cache beats the ----
    // ---- fixed-batch TTFT bound.                                ----
    let mut late = requests[0].clone();
    late.seed = 0xFEED;
    let mut cohort_plus_late = requests.clone();
    cohort_plus_late.push(late.clone());
    let (_, bound_metrics) = engine
        .run_batch_fixed(&cohort_plus_late)
        .expect("bound batch");
    let bound = bound_metrics.ttft;

    let scheduler = engine.serve(SchedulerConfig {
        max_lanes: cohort_plus_late.len(),
        queue_capacity: cohort_plus_late.len(),
        admission_workers: 2,
        mask_workers: 0, // auto
    });
    let cohort: Vec<_> = requests
        .iter()
        .map(|r| scheduler.submit(r.clone()).expect("submit"))
        .collect();
    // Let the cohort prefill and start decoding, then arrive late.
    std::thread::sleep(bound);
    let late_handle = scheduler.submit(late).expect("submit late");
    let late_finished = late_handle.wait().expect("late lane finishes");
    let mut cohort_ttft = Duration::ZERO;
    let mut cohort_tpot = Duration::ZERO;
    for handle in cohort {
        let finished = handle.wait().expect("cohort lane finishes");
        cohort_ttft += finished.timing.ttft;
        cohort_tpot += finished.timing.tpot;
    }
    let sched_stats = scheduler.metrics();
    scheduler.shutdown();
    println!(
        "  cohort of {count}: mean TTFT {} ms, mean TPOT {} ms",
        fmt_ms(cohort_ttft / count as u32),
        fmt_ms(cohort_tpot / count as u32),
    );
    println!(
        "  late join (cached grammar, cache hit: {}): TTFT {} ms vs fixed-batch bound {} ms",
        late_finished.timing.cache_hit,
        fmt_ms(late_finished.timing.ttft),
        fmt_ms(bound),
    );
    let late_pass = late_finished.timing.cache_hit && late_finished.timing.ttft < bound;
    let _ = sched_stats;

    // ---- Part 3: steady state at 256 concurrent lanes. ----
    let lanes = 256usize;
    let schema_family = xg_datasets::json_mode_eval_like(4, 0xE2E);
    let wave: Vec<EngineRequest> = (0..lanes)
        .map(|i| {
            if i % 4 == 0 {
                let task = &schema_family[(i / 4) % schema_family.len()];
                EngineRequest {
                    constraint: LaneConstraint::Grammar(
                        xg_grammar::json_schema_to_grammar(&task.schema).expect("schema converts"),
                    ),
                    prompt_tokens: 64,
                    reference: task.reference.clone(),
                    max_tokens: 300,
                    seed: i as u64,
                }
            } else {
                EngineRequest {
                    constraint: LaneConstraint::Unconstrained,
                    prompt_tokens: 32,
                    reference: format!("prose lane {i}: short unconstrained filler text.")
                        .into_bytes(),
                    max_tokens: 80,
                    seed: i as u64,
                }
            }
        })
        .collect();
    let scheduler = engine.serve(SchedulerConfig {
        max_lanes: lanes,
        queue_capacity: lanes,
        admission_workers: 2,
        mask_workers: 0, // auto
    });
    let handles: Vec<_> = wave
        .iter()
        .map(|r| scheduler.submit(r.clone()).expect("submit"))
        .collect();
    let mut wave_ttft = Duration::ZERO;
    let mut wave_tpot = Duration::ZERO;
    for handle in handles {
        let finished = handle.wait().expect("wave lane finishes");
        wave_ttft += finished.timing.ttft;
        wave_tpot += finished.timing.tpot;
    }
    let wave_stats = scheduler.metrics();
    scheduler.shutdown();
    println!(
        "  {lanes}-lane wave: {} lanes concurrent at peak, queue depth mean {:.1} / max {}, \
         mean TTFT {} ms, mean TPOT {} ms",
        wave_stats.max_concurrent_lanes,
        wave_stats.mean_queue_depth,
        wave_stats.max_queue_depth,
        fmt_ms(wave_ttft / lanes as u32),
        fmt_ms(wave_tpot / lanes as u32),
    );
    println!(
        "    steady-state throughput {:.0} tok/s over {} decode steps, \
         {} mask workers at {:.0}% utilization, {} cache hits / {} misses",
        wave_stats.throughput(),
        wave_stats.decode_steps,
        wave_stats.mask_workers,
        100.0 * wave_stats.mask_worker_utilization(),
        wave_stats.cache.hits,
        wave_stats.cache.misses,
    );

    // ---- The differential gates enforced by CI. ----
    println!(
        "  continuous-batching differential (byte-identical outputs, \
         late cached join TTFT under the fixed-batch bound): {}",
        if parity && late_pass && wave_stats.failed == 0 {
            "PASS"
        } else {
            "FAIL"
        }
    );
    println!();
}

/// JSON-Schema conformance corpus (PASS-gated): the generated per-feature
/// schema corpus from `xg_datasets::schema_corpus` is compiled through the
/// full `GrammarCompiler` pipeline, every known-valid instance is driven
/// token by token through mask generation (each token must be admitted by a
/// freshly generated mask and the final state must admit EOS), and every
/// known-invalid instance must be rejected. Reports per-feature compile
/// time, mask-fill time, and conformance counts.
fn experiment_schema_corpus(vocab: &Arc<Vocabulary>, config: &Config) {
    use std::collections::BTreeMap;

    println!("## Schema corpus — JSON-Schema conformance by converter feature");
    let cases = xg_datasets::schema_corpus(config.schema_corpus_cases, 0x5C0);
    let compiler = GrammarCompiler::new(Arc::clone(vocab));
    let sorted = SortedVocabulary::new(vocab);
    let eos = vocab.eos().expect("synthetic vocabulary has EOS");
    let mut mask = TokenBitmask::new_all_rejected(vocab.len());

    #[derive(Default)]
    struct FeatureStats {
        schemas: usize,
        compile_time: Duration,
        mask_time: Duration,
        mask_fills: u64,
        valid_pass: usize,
        valid_total: usize,
        invalid_pass: usize,
        invalid_total: usize,
    }
    let mut by_feature: BTreeMap<&'static str, FeatureStats> = BTreeMap::new();

    for case in &cases {
        let stats = by_feature.entry(case.feature).or_default();
        stats.schemas += 1;
        let start = Instant::now();
        let compiled = compiler
            .compile_json_schema(&case.schema)
            .expect("corpus schemas compile in strict mode");
        stats.compile_time += start.elapsed();

        // Valid instances: every token admitted by its mask, EOS at the end.
        for instance in &case.valid {
            stats.valid_total += 1;
            let bytes = instance.as_bytes();
            let (tokens, covered) = sorted.longest_prefix_cover(vocab, bytes);
            let mut matcher = GrammarMatcher::new(Arc::clone(&compiled));
            let mut ok = covered == bytes.len();
            for &token in &tokens {
                if !ok {
                    break;
                }
                let start = Instant::now();
                matcher.fill_next_token_bitmask(&mut mask);
                stats.mask_time += start.elapsed();
                stats.mask_fills += 1;
                ok = mask.is_allowed(token) && matcher.accept_token(token).is_ok();
            }
            if ok {
                let start = Instant::now();
                matcher.fill_next_token_bitmask(&mut mask);
                stats.mask_time += start.elapsed();
                stats.mask_fills += 1;
                ok = matcher.can_terminate() && mask.is_allowed(eos);
            }
            stats.valid_pass += usize::from(ok);
        }

        // Invalid instances: the matcher must refuse the bytes or refuse to
        // terminate after them.
        for instance in &case.invalid {
            stats.invalid_total += 1;
            let mut matcher = GrammarMatcher::new(Arc::clone(&compiled));
            let rejected =
                matcher.accept_bytes(instance.as_bytes()).is_err() || !matcher.can_terminate();
            stats.invalid_pass += usize::from(rejected);
        }
    }

    println!(
        "  {:<18} {:>7} {:>12} {:>13} {:>12} {:>12}",
        "feature", "schemas", "compile(us)", "mask(us/fill)", "valid", "invalid"
    );
    let mut totals = FeatureStats::default();
    for (feature, s) in &by_feature {
        println!(
            "  {:<18} {:>7} {:>12.1} {:>13.1} {:>9}/{:<2} {:>9}/{:<2}",
            feature,
            s.schemas,
            s.compile_time.as_secs_f64() * 1e6 / s.schemas.max(1) as f64,
            s.mask_time.as_secs_f64() * 1e6 / s.mask_fills.max(1) as f64,
            s.valid_pass,
            s.valid_total,
            s.invalid_pass,
            s.invalid_total,
        );
        totals.schemas += s.schemas;
        totals.valid_pass += s.valid_pass;
        totals.valid_total += s.valid_total;
        totals.invalid_pass += s.invalid_pass;
        totals.invalid_total += s.invalid_total;
    }
    let conformant = totals.valid_pass == totals.valid_total
        && totals.invalid_pass == totals.invalid_total
        && totals.valid_total > 0
        && totals.invalid_total > 0;
    println!(
        "  {} schemas over {} features, {} valid + {} invalid instances, conformance {:.1}%",
        totals.schemas,
        by_feature.len(),
        totals.valid_total,
        totals.invalid_total,
        100.0 * (totals.valid_pass + totals.invalid_pass) as f64
            / (totals.valid_total + totals.invalid_total).max(1) as f64,
    );

    // ---- The conformance gate enforced by CI. ----
    let pass = conformant && totals.schemas >= 200 && by_feature.len() >= 10;
    println!(
        "  schema corpus conformance (>=200 schemas, >=10 features, 100% pass rate): {}",
        if pass { "PASS" } else { "FAIL" }
    );
    println!();
}

/// Figure 12: cross-platform TTFT / TPOT, structured vs unstructured.
fn experiment_fig12(vocab: &Arc<Vocabulary>, config: &Config) {
    println!("## Figure 12 — cross-platform TTFT (ms) and TPOT (ms), structured vs unstructured");
    let requests = schema_requests(2);
    for profile in [
        ModelProfile::llama31_8b_4bit_m3max().scaled(config.time_scale),
        ModelProfile::qwen25_05b_iphone().scaled(config.time_scale),
    ] {
        let backend: Arc<dyn ConstrainedBackend> =
            Arc::new(XGrammarBackend::new(Arc::clone(vocab)));
        let engine = ServingEngine::new(
            Arc::clone(&backend),
            profile.clone(),
            ExecutionMode::Overlapped,
        );
        let structured = engine.run_batch(&requests).expect("runs").1;
        let unconstrained: Vec<EngineRequest> = requests
            .iter()
            .cloned()
            .map(|mut r| {
                r.constraint = LaneConstraint::Unconstrained;
                r
            })
            .collect();
        let unstructured = engine.run_batch(&unconstrained).expect("runs").1;
        println!(
            "  {:<40} structured TTFT {} / TPOT {}   unstructured TTFT {} / TPOT {}",
            profile.name,
            fmt_ms(structured.ttft),
            fmt_ms(structured.tpot),
            fmt_ms(unstructured.ttft),
            fmt_ms(unstructured.tpot)
        );
    }
    println!();
}

/// Static-analysis lint pass, end to end (PASS-gated). Four parts: (1) every
/// grammar of the pathological corpus is flagged with its expected
/// diagnostic code, strict compilation rejects exactly the error-carrying
/// ones, and the degenerate shapes fail at the builder; (2) every
/// schema-corpus grammar lints clean of errors through the full compiler
/// pipeline (default `Warn` mode, vocabulary-aware); (3) a vocabulary gap
/// surfaces as a `dead-state` error and an unsatisfiable trigger segment as
/// a `dead-trigger` rejection; (4) a strict-mode scheduler turns an
/// unsatisfiable grammar into `StreamEvent::Failed` at admission while a
/// healthy lane in the same batch still completes — no wedged lane.
fn experiment_grammar_lint(vocab: &Arc<Vocabulary>, config: &Config) {
    use xg_core::LintMode;
    use xg_engine::SchedulerConfig;
    use xg_grammar::analyze;

    println!("## Grammar lint — static analysis before the decode loop");

    // ---- Part 1: pathological corpus, every defect flagged. ----
    let corpus = xg_datasets::pathological_corpus();
    let strict = GrammarCompiler::with_config(
        Arc::clone(vocab),
        CompilerConfig::default().with_lint_mode(LintMode::Strict),
    );
    let mut flagged = 0usize;
    let mut strict_verdicts_ok = true;
    let lint_start = Instant::now();
    for case in &corpus {
        let analysis = analyze(&case.grammar);
        let hit = analysis
            .diagnostics
            .iter()
            .any(|d| d.code.as_str() == case.expected_code);
        flagged += usize::from(hit);
        if !hit {
            println!(
                "  MISSING: case `{}` not flagged with `{}`",
                case.name, case.expected_code
            );
        }
        let rejected = strict.compile_grammar_checked(&case.grammar).is_err();
        if rejected != case.expected_error {
            strict_verdicts_ok = false;
            println!(
                "  STRICT MISMATCH: case `{}` rejected={rejected}, expected {}",
                case.name, case.expected_error
            );
        }
    }
    let lint_time = lint_start.elapsed();
    let rejections = xg_datasets::builder_rejections();
    let corpus_pass = flagged == corpus.len() && strict_verdicts_ok && rejections.len() == 2;
    println!(
        "  pathological corpus: {flagged}/{} flagged, strict verdicts {}, \
         {} degenerate shapes rejected at build ({} ms incl. strict compiles)",
        corpus.len(),
        if strict_verdicts_ok { "ok" } else { "BROKEN" },
        rejections.len(),
        fmt_ms(lint_time).trim(),
    );

    // ---- Part 2: the whole schema corpus lints clean of errors. ----
    let cases = xg_datasets::schema_corpus(config.schema_corpus_cases, 0x5C0);
    let compiler = GrammarCompiler::new(Arc::clone(vocab)); // default: Warn
    let mut clean = 0usize;
    let mut warnings = 0usize;
    for case in &cases {
        let compiled = compiler
            .compile_json_schema(&case.schema)
            .expect("corpus schemas compile under Warn mode");
        let report = compiled.lint_report().expect("Warn mode records a report");
        warnings += report.warning_count();
        if report.has_errors() {
            println!(
                "  DIRTY: schema case `{}` has lint errors: {:?}",
                case.feature,
                report.errors().collect::<Vec<_>>()
            );
        } else {
            clean += 1;
        }
    }
    let clean_pass = clean == cases.len();
    println!(
        "  schema corpus: {clean}/{} grammars lint clean of errors ({warnings} warnings)",
        cases.len()
    );

    // ---- Part 3: vocabulary-aware findings on restricted vocabularies. ----
    // The grammar needs a "z" after "a", but no token of the vocabulary
    // contains "z": the post-"a" automaton state admits zero tokens.
    let gap_grammar = xg_grammar::parse_ebnf(r#"root ::= "a" "z""#, "root").expect("parses");
    let gap_vocab = Arc::new(Vocabulary::from_tokens(
        vec![
            b"a".to_vec(),
            b"b".to_vec(),
            b"ab".to_vec(),
            b"</s>".to_vec(),
        ],
        Some(3),
    ));
    let gap_report_has_dead = GrammarCompiler::new(Arc::clone(&gap_vocab))
        .compile_grammar(&gap_grammar)
        .lint_report()
        .map(|r| r.dead_states > 0 && r.has_errors())
        .unwrap_or(false);
    let full_vocab = Arc::new(Vocabulary::from_tokens(
        vec![b"a".to_vec(), b"z".to_vec(), b"</s>".to_vec()],
        Some(2),
    ));
    let control_is_clean = GrammarCompiler::new(full_vocab)
        .compile_grammar(&gap_grammar)
        .lint_report()
        .map(|r| r.dead_states == 0)
        .unwrap_or(false);

    let dead_tag = xg_grammar::StructuralTag::new(vec![xg_grammar::TagSpec {
        begin: "<f>".into(),
        content: xg_grammar::TagContent::Ebnf {
            text: "root ::= \"x\" root".into(),
            root: "root".into(),
        },
        end: "</f>".into(),
    }]);
    let dead_trigger_rejected = match strict.compile_tag_dispatch(&dead_tag) {
        Err(err) => err.to_string().contains("dead-trigger"),
        Ok(_) => false,
    };
    let vocab_pass = gap_report_has_dead && control_is_clean && dead_trigger_rejected;
    println!(
        "  vocabulary-aware: dead-state on gap vocab {}, clean on full vocab {}, \
         dead-trigger rejected {}",
        if gap_report_has_dead { "ok" } else { "MISSED" },
        if control_is_clean {
            "ok"
        } else {
            "FALSE POSITIVE"
        },
        if dead_trigger_rejected {
            "ok"
        } else {
            "MISSED"
        },
    );

    // ---- Part 4: strict admission turns lint errors into failed ----
    // ---- streams instead of wedged lanes.                        ----
    let profile = ModelProfile::llama31_8b_h100().scaled(config.time_scale);
    let strict_backend: Arc<dyn ConstrainedBackend> = Arc::new(XGrammarBackend::with_config(
        Arc::clone(vocab),
        CompilerConfig::default().with_lint_mode(LintMode::Strict),
    ));
    let engine = ServingEngine::new(strict_backend, profile, ExecutionMode::Overlapped);
    let scheduler = engine.serve(SchedulerConfig {
        max_lanes: 4,
        queue_capacity: 8,
        admission_workers: 1,
        mask_workers: 0, // auto
    });
    let unsatisfiable = EngineRequest {
        constraint: LaneConstraint::Grammar(
            xg_grammar::parse_ebnf(r#"root ::= "x" root"#, "root").expect("parses"),
        ),
        prompt_tokens: 16,
        reference: b"xxxx".to_vec(),
        max_tokens: 16,
        seed: 1,
    };
    let healthy = schema_requests(1).remove(0);
    let bad_handle = scheduler.submit(unsatisfiable).expect("submit bad");
    let good_handle = scheduler.submit(healthy).expect("submit good");
    let bad_outcome = bad_handle.wait();
    let good_outcome = good_handle.wait();
    let metrics = scheduler.metrics();
    scheduler.shutdown();
    let admission_pass = bad_outcome.is_err()
        && good_outcome.is_ok()
        && metrics.failed == 1
        && metrics.completed == 1;
    println!(
        "  strict admission: unsatisfiable lane {}, healthy lane {}, \
         metrics failed={} completed={}",
        match &bad_outcome {
            Err(_) => "failed at admission (ok)",
            Ok(_) => "WRONGLY COMPLETED",
        },
        match &good_outcome {
            Ok(_) => "completed (ok)",
            Err(_) => "WRONGLY FAILED",
        },
        metrics.failed,
        metrics.completed,
    );

    // ---- The lint gate enforced by CI. ----
    let pass = corpus_pass && clean_pass && vocab_pass && admission_pass;
    println!(
        "  grammar lint (corpus flagged, schemas clean, strict admission rejects): {}",
        if pass { "PASS" } else { "FAIL" }
    );
    println!();
}

/// Raw-speed mask path at frontier vocabulary scale (the PR 9 tentpole gate).
///
/// For each vocabulary size — 32k, 128k (the paper's Llama-3.1 point) and a
/// 256k frontier-scale synthetic vocabulary — this measures per-token
/// mask-generation throughput on the recursive JSON CFG for two paths:
///
/// * **word kernels** — the default configuration: the adaptive token-mask
///   cache applied through word-level bulk bitmask kernels
///   (`allow_run` / `reject_many` / `copy_from`), plus
/// * **per-token serial** — `enable_mask_cache = false`, so every token in
///   the vocabulary is matched individually against the pushdown state at
///   runtime.
///
/// It also reports the shared-base batched fill: eight lockstep lanes served
/// by one `fill_mask_base` + per-lane `fill_mask_from_base` versus eight
/// independent full fills (the scheduler's grouped mask-job path).
///
/// PASS gate (wired into CI as a smoke step): the word-kernel path must
/// reach at least 1.5x the per-token serial tokens/sec on the 128k-vocab
/// configuration. All three sizes run even under `--quick`; quick mode only
/// shrinks the iteration counts.
fn experiment_mask_throughput(_vocab: &Arc<Vocabulary>, config: &Config) {
    println!("## Mask throughput at scale (word kernels vs per-token serial)");
    let quick = config.time_scale < 1.0;
    let workload = Workload::CfgJson;
    let (kernel_refs, kernel_steps) = if quick { (2, 40) } else { (4, 120) };
    let serial_steps = if quick { 3 } else { 8 };
    let mut ratio_at_128k = 0.0f64;
    println!(
        "  {:>7} {:>15} {:>15} {:>8} {:>10}",
        "vocab", "kernel tok/s", "serial tok/s", "ratio", "batch x8"
    );
    for size in [32_000usize, 128_000, 256_000] {
        let vocab = if size == 256_000 {
            Arc::new(xg_tokenizer::frontier_256k_vocabulary())
        } else {
            bench_vocabulary(size)
        };
        let kernel: Arc<dyn ConstrainedBackend> =
            Arc::new(XGrammarBackend::new(Arc::clone(&vocab)));
        let serial: Arc<dyn ConstrainedBackend> = Arc::new(XGrammarBackend::with_config(
            Arc::clone(&vocab),
            CompilerConfig {
                enable_mask_cache: false,
                ..CompilerConfig::default()
            },
        ));
        let kernel_m = measure_mask_generation(&kernel, workload, kernel_refs, kernel_steps)
            .expect("word-kernel path handles the JSON CFG");
        let serial_m = measure_mask_generation(&serial, workload, 1, serial_steps)
            .expect("per-token serial path handles the JSON CFG");
        let kernel_tps = 1.0 / kernel_m.per_token.as_secs_f64().max(f64::MIN_POSITIVE);
        let serial_tps = 1.0 / serial_m.per_token.as_secs_f64().max(f64::MIN_POSITIVE);
        let ratio = kernel_tps / serial_tps;
        if size == 128_000 {
            ratio_at_128k = ratio;
        }
        let batch_speedup =
            measure_shared_base_speedup(&kernel, workload, if quick { 8 } else { 32 });
        println!(
            "  {:>6}k {:>15.0} {:>15.0} {:>7.1}x {:>9.2}x",
            size / 1000,
            kernel_tps,
            serial_tps,
            ratio,
            batch_speedup
        );
    }
    let pass = ratio_at_128k >= 1.5;
    println!(
        "  mask throughput (word-kernel fill >= 1.5x per-token serial at 128k): {}",
        if pass { "PASS" } else { "FAIL" }
    );
    println!();
}

/// Dynamic tool registries (PASS-gated, XGrammar-2 direction): an agentic
/// session mutates its tool catalog mid-session, and the dispatch layer must
/// keep up without recompiling the world. Four gates, enforced by CI:
///
/// 1. an incremental single-trigger update (`update_tag_dispatch`) at 100+
///    tools is ≥10x faster than a cold full recompile of the same final
///    catalog,
/// 2. two compilers sharing one `GrammarCache` and serving 90%-overlapping
///    catalogs hit the shared sub-grammar cache ≥90% of the time (segment
///    grammars are keyed by structural fingerprint, not registry position),
/// 3. decoding multi-turn `agent_sessions` through incremental registry
///    updates yields outputs byte-identical to compiling every turn's
///    catalog fresh,
/// 4. dispatch-cache bytes stay bounded under registry churn (the former
///    unbounded `tag_dispatch_memo` leak).
fn experiment_dynamic_registry(vocab: &Arc<Vocabulary>, config: &Config) {
    use xg_core::TagDispatchCacheConfig;
    use xg_datasets::{
        agent_catalog, agent_sessions, agent_tag_spec, agent_tool, overlapping_catalogs,
    };
    use xg_grammar::DispatchDelta;

    println!(
        "## Dynamic tool registries — incremental dispatch updates + shared sub-grammar cache"
    );
    let catalog_size = if config.vocab_size >= 100_000 {
        128
    } else {
        104
    };

    // ---- Part 1: incremental single-trigger update vs full recompile. ----
    let tools: Vec<_> = (0..catalog_size).map(agent_tool).collect();
    let catalog = agent_catalog(&tools);
    let compiler = GrammarCompiler::new(Arc::clone(vocab));
    let base = compiler
        .compile_tag_dispatch(&catalog)
        .expect("base catalog compiles");
    let reps = 3usize;
    let mut incremental = Duration::MAX;
    for i in 0..reps {
        let delta = DispatchDelta::AddTag(agent_tag_spec(&agent_tool(10_000 + i)));
        let start = Instant::now();
        let updated = compiler
            .update_tag_dispatch(&base, &delta)
            .expect("incremental update applies");
        incremental = incremental.min(start.elapsed());
        assert_eq!(updated.triggers().len(), catalog_size + 1);
    }
    // The baseline recompiles the same final catalog cold — fresh compiler,
    // fresh cache — like a server that rebuilds the registry from its
    // description on every mutation.
    let final_catalog = catalog
        .apply_delta(&DispatchDelta::AddTag(agent_tag_spec(&agent_tool(10_000))))
        .expect("delta applies");
    // One baseline rep: at 100+ tools a full recompile takes seconds, and
    // the ~100x gap makes the min-of-N refinement pointless.
    let fresh = GrammarCompiler::new(Arc::clone(vocab));
    let start = Instant::now();
    fresh
        .compile_tag_dispatch(&final_catalog)
        .expect("full recompile");
    let full = start.elapsed();
    let speedup = full.as_secs_f64() / incremental.as_secs_f64().max(1e-9);
    println!(
        "  registry update at {catalog_size} tools: incremental {} ms vs full recompile {} ms ({speedup:.0}x)",
        fmt_ms(incremental),
        fmt_ms(full),
    );
    let speedup_pass = speedup >= 10.0;

    // ---- Part 2: cross-registry sub-grammar sharing at 90% overlap. ----
    let shared_tools = (9 * catalog_size).div_ceil(10);
    let cache = Arc::new(GrammarCache::new(GrammarCacheConfig::default()));
    let tenant_a = GrammarCompiler::with_cache(
        Arc::clone(vocab),
        CompilerConfig::default(),
        Arc::clone(&cache),
    );
    let tenant_b = GrammarCompiler::with_cache(
        Arc::clone(vocab),
        CompilerConfig::default(),
        Arc::clone(&cache),
    );
    let (catalog_a, catalog_b) = overlapping_catalogs(catalog_size, shared_tools);
    tenant_a
        .compile_tag_dispatch(&catalog_a)
        .expect("catalog A compiles");
    tenant_b
        .compile_tag_dispatch(&catalog_b)
        .expect("catalog B compiles");
    let stats_b = tenant_b.local_cache_stats();
    let hit_rate = stats_b.hits as f64 / (stats_b.hits + stats_b.misses).max(1) as f64;
    println!(
        "  {shared_tools}/{catalog_size}-tool shared catalog pair: tenant B hit the shared \
         sub-grammar cache {}/{} times ({:.1}%)",
        stats_b.hits,
        stats_b.hits + stats_b.misses,
        100.0 * hit_rate,
    );
    let sharing_pass = hit_rate >= 0.9;

    // ---- Part 3: decode parity, incremental updates vs fresh compiles. ----
    let profile = ModelProfile::llama31_8b_h100().scaled(config.time_scale);
    let backend: Arc<dyn ConstrainedBackend> = Arc::new(XGrammarBackend::new(Arc::clone(vocab)));
    let engine = ServingEngine::new(Arc::clone(&backend), profile.clone(), ExecutionMode::Serial);
    let mut parity = true;
    let mut turns_checked = 0usize;
    let mut deltas_applied = 0usize;
    for session in agent_sessions(2, 5, 4, 0xD15) {
        let mut live_catalog = session.initial.clone();
        for turn in &session.turns {
            if let Some(delta) = &turn.delta {
                live_catalog = engine
                    .update_tool_registry(&live_catalog, delta)
                    .expect("registry update applies");
                assert_eq!(
                    live_catalog, turn.catalog,
                    "engine catalog tracks the deltas"
                );
                deltas_applied += 1;
            }
            let request = EngineRequest {
                constraint: LaneConstraint::StructuralTag(turn.catalog.clone()),
                prompt_tokens: 32,
                reference: turn.task.reference.clone(),
                max_tokens: 200,
                seed: 7,
            };
            let (incr, _) = engine
                .run_batch_fixed(std::slice::from_ref(&request))
                .expect("incremental-engine turn");
            let fresh_backend: Arc<dyn ConstrainedBackend> =
                Arc::new(XGrammarBackend::new(Arc::clone(vocab)));
            let fresh_engine =
                ServingEngine::new(fresh_backend, profile.clone(), ExecutionMode::Serial);
            let (fresh, _) = fresh_engine
                .run_batch_fixed(std::slice::from_ref(&request))
                .expect("fresh-engine turn");
            parity &= incr[0].output == fresh[0].output;
            turns_checked += 1;
        }
    }
    println!(
        "  multi-turn sessions: {turns_checked} turns ({deltas_applied} registry mutations) decoded, \
         incremental vs fresh outputs {}",
        if parity { "byte-identical" } else { "DIVERGED" },
    );

    // ---- Part 4: dispatch-cache boundedness under registry churn. ----
    let probe = GrammarCompiler::new(Arc::clone(vocab))
        .compile_tag_dispatch(&agent_catalog(&[agent_tool(20_000)]))
        .expect("probe catalog compiles")
        .memory_bytes();
    let budget = 6 * probe.max(1);
    let churn_compiler = GrammarCompiler::new(Arc::clone(vocab)).with_dispatch_cache_config(
        TagDispatchCacheConfig {
            max_bytes: budget,
            max_entries: usize::MAX,
        },
    );
    let churned = 200usize;
    for i in 0..churned {
        churn_compiler
            .compile_tag_dispatch(&agent_catalog(&[agent_tool(20_000 + i)]))
            .expect("churn catalog compiles");
    }
    let churn_stats = churn_compiler.dispatch_cache().stats();
    println!(
        "  churn of {churned} distinct registries through a {budget}-byte dispatch cache: \
         {} resident entries, {} bytes, {} evictions",
        churn_stats.entries, churn_stats.current_bytes, churn_stats.evictions,
    );
    let churn_pass = churn_stats.current_bytes <= budget as u64 && churn_stats.evictions > 0;

    println!(
        "  dynamic registry (incremental >=10x full recompile, >=90% shared-catalog hits, \
         byte-identical decode, bounded dispatch cache): {}",
        if speedup_pass && sharing_pass && parity && churn_pass {
            "PASS"
        } else {
            "FAIL"
        }
    );
    println!();
}

/// Times eight lockstep sessions filled via the shared-base batched path
/// against eight independent full fills, returning full/batched (>1 means
/// the batched path is faster). Falls back to 1.0 if the backend exposes no
/// shareable base (the scheduler makes the same fallback per group).
fn measure_shared_base_speedup(
    backend: &Arc<dyn ConstrainedBackend>,
    workload: Workload,
    rounds: usize,
) -> f64 {
    const LANES: usize = 8;
    let vocab_size = backend.vocabulary().len();
    let (grammar, _) = workload.grammar_and_references(1);
    let compiled = backend.compile(&grammar).expect("grammar compiles");
    let mut sessions: Vec<Box<dyn BackendSession>> =
        (0..LANES).map(|_| compiled.new_session()).collect();
    let mut mask = TokenBitmask::new_all_rejected(vocab_size);
    let mut base = TokenBitmask::new_all_rejected(vocab_size);
    // Warm both paths once so first-touch allocation does not skew the ratio.
    sessions[0].fill_mask(&mut mask);
    if !sessions[0].fill_mask_base(&mut base) {
        return 1.0;
    }
    sessions[0].fill_mask_from_base(&mut mask, &base);

    let full_start = Instant::now();
    for _ in 0..rounds {
        for session in &mut sessions {
            session.fill_mask(&mut mask);
        }
    }
    let full = full_start.elapsed();

    let batched_start = Instant::now();
    for _ in 0..rounds {
        if sessions[0].fill_mask_base(&mut base) {
            for session in &mut sessions {
                session.fill_mask_from_base(&mut mask, &base);
            }
        } else {
            for session in &mut sessions {
                session.fill_mask(&mut mask);
            }
        }
    }
    let batched = batched_start.elapsed();
    full.as_secs_f64() / batched.as_secs_f64().max(f64::MIN_POSITIVE)
}
