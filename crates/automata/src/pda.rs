//! Byte-level pushdown automaton (PDA) data structure.
//!
//! Following the paper's formulation (Appendix A), the PDA is a collection of
//! per-rule finite-state automata whose edges are labelled either with a byte
//! range (consuming one byte) or with a *rule reference* (pushing the return
//! position onto the stack and jumping to the referenced rule's start state).
//! Node ids are global across all rules, which lets the adaptive token mask
//! cache use the node id directly as its key.

use std::collections::VecDeque;
use std::fmt;

use crate::utf8::ByteRange;

/// Identifier of a PDA node (state), global across all rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Returns the node id as an index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of a rule automaton inside the PDA.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PdaRuleId(pub u32);

impl PdaRuleId {
    /// Returns the rule id as an index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An edge of the PDA.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PdaEdge {
    /// Consume one byte inside `range` and move to `target` (same rule).
    Bytes {
        /// Accepted byte range.
        range: ByteRange,
        /// Node reached after consuming the byte.
        target: NodeId,
    },
    /// Recursively enter `rule`; when that rule completes, execution resumes
    /// at `target` (the *return node*, which is pushed onto the stack).
    Rule {
        /// Referenced rule.
        rule: PdaRuleId,
        /// Return node pushed on the stack.
        target: NodeId,
    },
}

impl PdaEdge {
    /// The node this edge leads to (byte target or return node).
    pub fn target(&self) -> NodeId {
        match self {
            PdaEdge::Bytes { target, .. } | PdaEdge::Rule { target, .. } => *target,
        }
    }

    /// Returns the referenced rule, if this is a rule-reference edge.
    pub fn referenced_rule(&self) -> Option<PdaRuleId> {
        match self {
            PdaEdge::Rule { rule, .. } => Some(*rule),
            PdaEdge::Bytes { .. } => None,
        }
    }
}

/// A node (state) of the PDA.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PdaNode {
    /// The rule this node belongs to.
    pub rule: PdaRuleId,
    /// Outgoing edges.
    pub edges: Vec<PdaEdge>,
    /// Whether reaching this node completes the rule (pop the stack).
    pub is_final: bool,
}

/// Per-rule metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PdaRule {
    /// Rule name (as in the source grammar, or synthesized during inlining).
    pub name: String,
    /// Start node of the rule's automaton.
    pub start: NodeId,
}

/// Structural statistics of a PDA, used by tests, the ablation study and
/// EXPERIMENTS.md.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PdaStats {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of byte edges.
    pub byte_edges: usize,
    /// Number of rule-reference edges.
    pub rule_edges: usize,
    /// Number of rules.
    pub rules: usize,
}

/// A byte-level pushdown automaton compiled from a grammar.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pda {
    pub(crate) nodes: Vec<PdaNode>,
    pub(crate) rules: Vec<PdaRule>,
    pub(crate) root: PdaRuleId,
}

impl Pda {
    /// Returns the node with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[inline]
    pub fn node(&self, id: NodeId) -> &PdaNode {
        &self.nodes[id.index()]
    }

    /// Returns all nodes, indexed by [`NodeId`].
    pub fn nodes(&self) -> &[PdaNode] {
        &self.nodes
    }

    /// Returns the rule with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[inline]
    pub fn rule(&self, id: PdaRuleId) -> &PdaRule {
        &self.rules[id.index()]
    }

    /// Returns all rules, indexed by [`PdaRuleId`].
    pub fn rules(&self) -> &[PdaRule] {
        &self.rules
    }

    /// Returns the root rule id.
    pub fn root(&self) -> PdaRuleId {
        self.root
    }

    /// Returns the start node of the root rule.
    pub fn root_start(&self) -> NodeId {
        self.rules[self.root.index()].start
    }

    /// Returns the number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Computes structural statistics.
    pub fn stats(&self) -> PdaStats {
        let mut stats = PdaStats {
            nodes: self.nodes.len(),
            rules: self.rules.len(),
            ..Default::default()
        };
        for node in &self.nodes {
            for edge in &node.edges {
                match edge {
                    PdaEdge::Bytes { .. } => stats.byte_edges += 1,
                    PdaEdge::Rule { .. } => stats.rule_edges += 1,
                }
            }
        }
        stats
    }

    /// Removes nodes that are unreachable from any rule start reachable from
    /// the root rule, renumbering the survivors. Rules that become
    /// unreachable are removed as well.
    pub fn compact(&self) -> Pda {
        // 1. Which rules are reachable from the root?
        let mut rule_reachable = vec![false; self.rules.len()];
        let mut queue = VecDeque::new();
        rule_reachable[self.root.index()] = true;
        queue.push_back(self.root);
        // Reachability of rules requires walking nodes, so interleave the two
        // searches: first collect node-level reachability per reachable rule.
        let mut node_reachable = vec![false; self.nodes.len()];
        while let Some(rule_id) = queue.pop_front() {
            let start = self.rules[rule_id.index()].start;
            let mut node_queue = VecDeque::new();
            if !node_reachable[start.index()] {
                node_reachable[start.index()] = true;
                node_queue.push_back(start);
            }
            while let Some(n) = node_queue.pop_front() {
                for edge in &self.nodes[n.index()].edges {
                    if let PdaEdge::Rule { rule, .. } = edge {
                        if !rule_reachable[rule.index()] {
                            rule_reachable[rule.index()] = true;
                            queue.push_back(*rule);
                        }
                    }
                    let t = edge.target();
                    if !node_reachable[t.index()] {
                        node_reachable[t.index()] = true;
                        node_queue.push_back(t);
                    }
                }
            }
        }

        // 2. Renumber rules and nodes.
        let mut rule_map = vec![PdaRuleId(u32::MAX); self.rules.len()];
        let mut new_rules = Vec::new();
        for (i, rule) in self.rules.iter().enumerate() {
            if rule_reachable[i] {
                rule_map[i] = PdaRuleId(new_rules.len() as u32);
                new_rules.push(rule.clone());
            }
        }
        let mut node_map = vec![NodeId(u32::MAX); self.nodes.len()];
        let mut new_nodes = Vec::new();
        for (i, node) in self.nodes.iter().enumerate() {
            if node_reachable[i] {
                node_map[i] = NodeId(new_nodes.len() as u32);
                new_nodes.push(node.clone());
            }
        }
        // 3. Rewrite edges and rule starts.
        for node in &mut new_nodes {
            node.rule = rule_map[node.rule.index()];
            for edge in &mut node.edges {
                match edge {
                    PdaEdge::Bytes { target, .. } => *target = node_map[target.index()],
                    PdaEdge::Rule { rule, target } => {
                        *rule = rule_map[rule.index()];
                        *target = node_map[target.index()];
                    }
                }
            }
        }
        for rule in &mut new_rules {
            rule.start = node_map[rule.start.index()];
        }
        Pda {
            nodes: new_nodes,
            rules: new_rules,
            root: rule_map[self.root.index()],
        }
    }

    /// Checks internal consistency (all edge targets in range, rule starts
    /// belong to their rule). Used by tests and debug assertions.
    pub fn check_consistency(&self) -> Result<(), String> {
        for (i, rule) in self.rules.iter().enumerate() {
            let start = rule.start;
            if start.index() >= self.nodes.len() {
                return Err(format!("rule {i} start out of range"));
            }
            if self.nodes[start.index()].rule.index() != i {
                return Err(format!("rule {i} start node belongs to another rule"));
            }
        }
        for (i, node) in self.nodes.iter().enumerate() {
            if node.rule.index() >= self.rules.len() {
                return Err(format!("node {i} belongs to unknown rule"));
            }
            for edge in &node.edges {
                if edge.target().index() >= self.nodes.len() {
                    return Err(format!("node {i} has an edge to an unknown node"));
                }
                if let PdaEdge::Rule { rule, .. } = edge {
                    if rule.index() >= self.rules.len() {
                        return Err(format!("node {i} references an unknown rule"));
                    }
                }
                if self.nodes[edge.target().index()].rule != node.rule {
                    return Err(format!("node {i} has an edge crossing rule boundaries"));
                }
            }
        }
        Ok(())
    }
}
