//! Multi-pattern byte scanning: an Aho–Corasick automaton plus the naive
//! reference scanner it replaces.
//!
//! The tag-dispatch layer scans free text for *trigger* strings (e.g. every
//! registered tool's `<function=` prefix). The original implementation kept
//! the longest pending suffix as a byte vector and compared it against every
//! trigger on every byte — fine for a handful of triggers, O(triggers ×
//! trigger-length) per byte for a large tool registry. [`AhoCorasick`]
//! precomputes the classic goto/failure automaton (dense transitions at the
//! root, where prose bytes live; sparse edges plus failure links elsewhere),
//! so the scan advances in amortized O(1) per byte regardless of catalog
//! size while memory stays proportional to the catalog's total bytes.
//! [`NaiveMultiPattern`] preserves the original algorithm as the correctness
//! baseline for differential tests and the trigger-scan throughput
//! benchmarks.
//!
//! Both scanners implement *first-completed-wins* semantics over pattern sets
//! where no pattern occurs inside another (the invariant
//! `StructuralTag::trigger_assignments` validates): at most one pattern can
//! complete at any byte, and a completed pattern can never hide inside
//! another's partial match.
//!
//! # Examples
//!
//! ```
//! use xg_automata::AhoCorasick;
//!
//! let ac = AhoCorasick::new(&[b"<fn=".to_vec(), b"<tool>".to_vec()]);
//! let mut state = ac.start();
//! let mut fired = None;
//! for &b in b"call <fn=".iter() {
//!     state = ac.step(state, b);
//!     if let Some(pattern) = ac.matched(state) {
//!         fired = Some(pattern);
//!     }
//! }
//! assert_eq!(fired, Some(0));
//! ```

/// A scan state of an [`AhoCorasick`] automaton. States are plain indices:
/// cheap to copy, store in rollback snapshots, and compare.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AcState(pub u32);

impl AcState {
    /// Returns the state as a usable index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An Aho–Corasick automaton over byte patterns: `step` advances the scan by
/// one byte, `matched` reports the pattern (by index into the constructor's
/// list) that ends at the current state.
///
/// Construction is the textbook algorithm: a trie of the patterns with
/// failure links computed by breadth-first search. The *root* state — where
/// the scan sits for virtually every prose byte — gets a dense 256-entry
/// transition row (one lookup, no search); every other state keeps its
/// sorted sparse goto edges plus a failure link, so memory stays
/// O(total pattern bytes) however large the tool catalog, and stepping is
/// amortized O(1) (each failure hop gives back trie depth previously paid
/// for byte by byte). Matches are inherited through failure links, so a
/// pattern ending as a proper suffix of another pattern's prefix is still
/// reported (with the no-pattern-inside-another trigger invariant this case
/// cannot arise, but the automaton does not rely on it).
#[derive(Debug, Clone)]
pub struct AhoCorasick {
    /// Dense transition row for the root state: `root_next[byte]` is the
    /// state after consuming `byte` at the root (the root itself when no
    /// pattern starts with `byte`).
    root_next: Box<[u32; 256]>,
    /// Sorted sparse goto edges per non-root trie state (`edges[0]` is the
    /// root's list, used only during construction — `step` takes the dense
    /// row instead).
    edges: Vec<Vec<(u8, u32)>>,
    /// Failure link per state: the longest proper suffix of the state's path
    /// that is also a path prefix in the trie.
    fail: Vec<u32>,
    /// Pattern index ending at this state (`u32::MAX` = none). With
    /// substring-free pattern sets at most one pattern ends per state; ties
    /// from duplicate patterns keep the smallest index.
    output: Vec<u32>,
    patterns: Vec<Vec<u8>>,
}

const NO_OUTPUT: u32 = u32::MAX;

impl AhoCorasick {
    /// Builds the automaton for `patterns`. Empty patterns are ignored (they
    /// can never "complete" in a byte scan); an empty pattern list yields an
    /// automaton that never matches.
    pub fn new(patterns: &[Vec<u8>]) -> Self {
        // Trie construction: goto edges as a per-state sparse list.
        let mut edges: Vec<Vec<(u8, u32)>> = vec![Vec::new()];
        let mut output: Vec<u32> = vec![NO_OUTPUT];
        for (idx, pattern) in patterns.iter().enumerate() {
            if pattern.is_empty() {
                continue;
            }
            let mut state = 0u32;
            for &b in pattern {
                state = match edges[state as usize].iter().find(|(eb, _)| *eb == b) {
                    Some(&(_, next)) => next,
                    None => {
                        let next = edges.len() as u32;
                        edges[state as usize].push((b, next));
                        edges.push(Vec::new());
                        output.push(NO_OUTPUT);
                        next
                    }
                };
            }
            if output[state as usize] == NO_OUTPUT {
                output[state as usize] = idx as u32;
            }
        }
        for list in &mut edges {
            list.sort_unstable_by_key(|(b, _)| *b);
        }
        // Dense root row: stay at the root unless a pattern starts here.
        let mut root_next = Box::new([0u32; 256]);
        for &(b, child) in &edges[0] {
            root_next[b as usize] = child;
        }
        // Failure links by BFS: fail(child) = the state reached from
        // fail(parent) on the child's byte (walking further failure links as
        // needed — exactly what `step` does at scan time).
        let mut fail = vec![0u32; edges.len()];
        let mut queue = std::collections::VecDeque::new();
        for &(_, child) in &edges[0] {
            queue.push_back(child);
        }
        while let Some(state) = queue.pop_front() {
            let f = fail[state as usize];
            // Inherit the failure state's match: the longest proper suffix of
            // this state's path that is itself a (completed) pattern.
            if output[state as usize] == NO_OUTPUT {
                output[state as usize] = output[f as usize];
            }
            for &(b, child) in &edges[state as usize] {
                fail[child as usize] = Self::resolve(&edges, &root_next, &fail, AcState(f), b).0;
                queue.push_back(child);
            }
        }
        AhoCorasick {
            root_next,
            edges,
            fail,
            output,
            patterns: patterns.to_vec(),
        }
    }

    /// The goto-with-failure transition: the state reached from `state` on
    /// `byte`, following failure links until a goto edge (or the root) takes
    /// it.
    #[inline]
    fn resolve(
        edges: &[Vec<(u8, u32)>],
        root_next: &[u32; 256],
        fail: &[u32],
        state: AcState,
        byte: u8,
    ) -> AcState {
        let mut s = state.0;
        loop {
            if s == 0 {
                return AcState(root_next[byte as usize]);
            }
            if let Ok(i) = edges[s as usize].binary_search_by_key(&byte, |(b, _)| *b) {
                return AcState(edges[s as usize][i].1);
            }
            s = fail[s as usize];
        }
    }

    /// The start state (no bytes scanned, or scanning restarted).
    #[inline]
    pub fn start(&self) -> AcState {
        AcState(0)
    }

    /// Advances the scan by one byte.
    #[inline]
    pub fn step(&self, state: AcState, byte: u8) -> AcState {
        Self::resolve(&self.edges, &self.root_next, &self.fail, state, byte)
    }

    /// The pattern (index into the constructor's list) that completed on the
    /// transition *into* this state, if any.
    #[inline]
    pub fn matched(&self, state: AcState) -> Option<usize> {
        let out = self.output[state.index()];
        (out != NO_OUTPUT).then_some(out as usize)
    }

    /// Number of automaton states (the trie size — memory is proportional to
    /// this, not to `states × 256`).
    pub fn state_count(&self) -> usize {
        self.output.len()
    }

    /// The patterns this automaton scans for.
    pub fn patterns(&self) -> &[Vec<u8>] {
        &self.patterns
    }

    /// Scans `haystack` from the start state and returns every completed
    /// match as `(end_position, pattern_index)` — the position is the index
    /// one past the pattern's last byte. The scan *restarts* after each
    /// match, mirroring how tag dispatch leaves free text on a completed
    /// trigger (continue from the match state instead to track overlaps —
    /// that is what the dispatch matcher does when a fired trigger is
    /// cancelled). Convenience for tests and the throughput benchmarks; the
    /// tag-dispatch matcher drives [`step`](Self::step) itself to interleave
    /// scanning with dispatch.
    pub fn find_all(&self, haystack: &[u8]) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        let mut state = self.start();
        for (i, &b) in haystack.iter().enumerate() {
            state = self.step(state, b);
            if let Some(pattern) = self.matched(state) {
                out.push((i + 1, pattern));
                state = self.start();
            }
        }
        out
    }
}

/// The original naive multi-pattern scanner: tracks the longest suffix of the
/// scanned text that is a proper prefix of some pattern, comparing it against
/// every pattern on every byte. Kept as the reference implementation for the
/// Aho–Corasick differential tests and the trigger-scan benchmarks.
#[derive(Debug, Clone)]
pub struct NaiveMultiPattern {
    patterns: Vec<Vec<u8>>,
}

impl NaiveMultiPattern {
    /// Creates a scanner over `patterns`.
    pub fn new(patterns: &[Vec<u8>]) -> Self {
        NaiveMultiPattern {
            patterns: patterns.to_vec(),
        }
    }

    /// Advances the scan by one byte. `pending` holds the longest suffix of
    /// the scanned text that is a proper prefix of some pattern; returns the
    /// index of a pattern that just completed, if any.
    pub fn step(&self, pending: &mut Vec<u8>, byte: u8) -> Option<usize> {
        pending.push(byte);
        loop {
            if let Some(idx) = self
                .patterns
                .iter()
                .position(|p| !p.is_empty() && p == pending)
            {
                pending.clear();
                return Some(idx);
            }
            if self
                .patterns
                .iter()
                .any(|p| p.len() > pending.len() && p.starts_with(pending))
            {
                return None;
            }
            if pending.is_empty() {
                return None;
            }
            // Drop the oldest byte and retry: a pattern may start inside the
            // suffix we have been tracking.
            pending.remove(0);
        }
    }

    /// Scans `haystack` like [`AhoCorasick::find_all`], restarting the
    /// pending suffix after every reported match (the same post-match restart
    /// the tag-dispatch free-text scan performs).
    pub fn find_all(&self, haystack: &[u8]) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        let mut pending = Vec::new();
        for (i, &b) in haystack.iter().enumerate() {
            if let Some(pattern) = self.step(&mut pending, b) {
                out.push((i + 1, pattern));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pats(list: &[&[u8]]) -> Vec<Vec<u8>> {
        list.iter().map(|p| p.to_vec()).collect()
    }

    #[test]
    fn single_pattern_matches_at_every_occurrence() {
        let ac = AhoCorasick::new(&pats(&[b"<n>"]));
        assert_eq!(ac.find_all(b"a<n>b<n<n>"), vec![(4, 0), (10, 0)]);
    }

    #[test]
    fn overlapping_prefixes_do_not_derail_the_scan() {
        // Prose containing '<' and '<x' must not derail the scan for '<n>'.
        let ac = AhoCorasick::new(&pats(&[b"<n>"]));
        assert_eq!(ac.find_all(b"a < b <x <<n>"), vec![(13, 0)]);
    }

    #[test]
    fn pattern_starting_inside_a_failed_prefix_is_found() {
        // After 'ab' fails to extend to 'abc', the suffix 'b' must still be
        // live for 'bq'.
        let ac = AhoCorasick::new(&pats(&[b"abc", b"bq"]));
        assert_eq!(ac.find_all(b"xabqy"), vec![(4, 1)]);
    }

    #[test]
    fn multiple_patterns_report_their_own_indices() {
        let ac = AhoCorasick::new(&pats(&[b"<fn=", b"<tool>", b"[["]));
        assert_eq!(
            ac.find_all(b"x<tool>y[[z<fn="),
            vec![(7, 1), (10, 2), (15, 0)]
        );
    }

    #[test]
    fn empty_patterns_and_empty_sets_never_match() {
        let ac = AhoCorasick::new(&pats(&[b""]));
        assert!(ac.find_all(b"anything").is_empty());
        let none = AhoCorasick::new(&[]);
        assert!(none.find_all(b"anything").is_empty());
        assert_eq!(none.state_count(), 1);
    }

    #[test]
    fn duplicate_patterns_report_the_first_index() {
        let ac = AhoCorasick::new(&pats(&[b"xy", b"xy"]));
        assert_eq!(ac.find_all(b"axy"), vec![(3, 0)]);
    }

    #[test]
    fn naive_scanner_agrees_on_fixed_cases() {
        for (patterns, haystack) in [
            (pats(&[b"<n>"]), &b"a < b <x <<n> and <n>"[..]),
            (pats(&[b"abc", b"bq"]), b"xabqy abc bq"),
            (pats(&[b"<function=", b"<tool>"]), b"<funct<tool><function="),
        ] {
            let ac = AhoCorasick::new(&patterns);
            let naive = NaiveMultiPattern::new(&patterns);
            assert_eq!(ac.find_all(haystack), naive.find_all(haystack));
        }
    }

    #[test]
    fn states_are_cheap_and_resumable() {
        let ac = AhoCorasick::new(&pats(&[b"<n>"]));
        let mut state = ac.start();
        for &b in b"x<n".iter() {
            state = ac.step(state, b);
        }
        // A copied state resumes independently.
        let fork = state;
        assert_eq!(ac.matched(ac.step(fork, b'>')), Some(0));
        assert_eq!(ac.matched(ac.step(state, b'x')), None);
    }
}
