//! A small nondeterministic finite-state automaton over bytes.
//!
//! Used for the *expanded suffix* automata of context expansion (paper §3.2,
//! Algorithm 2) and by the Outlines-style regex/FSM baseline. Edges are
//! labelled with inclusive byte ranges; there are no epsilon edges.

use std::collections::BTreeSet;

use crate::utf8::ByteRange;

/// Identifier of a state inside an [`Fsa`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StateId(pub u32);

impl StateId {
    /// Returns the state id as an index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct State {
    edges: Vec<(ByteRange, StateId)>,
    is_final: bool,
}

/// A byte-level NFA without epsilon edges.
///
/// # Examples
///
/// ```
/// use xg_automata::fsa::Fsa;
/// use xg_automata::utf8::ByteRange;
///
/// let mut fsa = Fsa::new();
/// let s0 = fsa.start();
/// let s1 = fsa.add_state();
/// fsa.add_edge(s0, ByteRange::new(b'a', b'z'), s1);
/// fsa.set_final(s1, true);
/// assert!(fsa.accepts(b"q"));
/// assert!(!fsa.accepts(b"qq"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fsa {
    states: Vec<State>,
    start: StateId,
}

impl Default for Fsa {
    fn default() -> Self {
        Self::new()
    }
}

/// Result of running an FSA over the *remaining* bytes of a
/// context-dependent token during context expansion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SuffixMatch {
    /// The remaining bytes can neither extend to nor contain an accepted
    /// string: the token is certainly invalid in every parent context.
    Rejected,
    /// The remaining bytes are a prefix of an accepted string, or start with
    /// an accepted string; validity still depends on the runtime stack.
    Possible,
}

impl Fsa {
    /// Creates an FSA with a single non-final start state.
    pub fn new() -> Self {
        Fsa {
            states: vec![State::default()],
            start: StateId(0),
        }
    }

    /// Returns the start state.
    pub fn start(&self) -> StateId {
        self.start
    }

    /// Returns the number of states.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Returns `true` if the FSA has no states (never true in practice; the
    /// start state always exists).
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Adds a fresh non-final state and returns its id.
    pub fn add_state(&mut self) -> StateId {
        let id = StateId(self.states.len() as u32);
        self.states.push(State::default());
        id
    }

    /// Adds an edge labelled with a byte range.
    ///
    /// # Panics
    ///
    /// Panics if either state id is out of range.
    pub fn add_edge(&mut self, from: StateId, range: ByteRange, to: StateId) {
        assert!(to.index() < self.states.len(), "edge target out of range");
        self.states[from.index()].edges.push((range, to));
    }

    /// Marks a state as final or not.
    pub fn set_final(&mut self, state: StateId, is_final: bool) {
        self.states[state.index()].is_final = is_final;
    }

    /// Returns `true` if the state is final.
    pub fn is_final(&self, state: StateId) -> bool {
        self.states[state.index()].is_final
    }

    /// Returns the outgoing edges of a state.
    pub fn edges(&self, state: StateId) -> &[(ByteRange, StateId)] {
        &self.states[state.index()].edges
    }

    /// Returns `true` if any state is final (the automaton accepts at least
    /// one string, assuming all final states are reachable).
    pub fn has_final_state(&self) -> bool {
        self.states.iter().any(|s| s.is_final)
    }

    /// Returns `true` if a final state is reachable from the start state,
    /// i.e. the automaton's language is non-empty.
    pub fn has_reachable_final_state(&self) -> bool {
        let mut visited = vec![false; self.states.len()];
        let mut stack = vec![self.start];
        visited[self.start.index()] = true;
        while let Some(s) = stack.pop() {
            if self.states[s.index()].is_final {
                return true;
            }
            for &(_, to) in &self.states[s.index()].edges {
                if !visited[to.index()] {
                    visited[to.index()] = true;
                    stack.push(to);
                }
            }
        }
        false
    }

    /// Steps a set of states over one byte.
    pub fn step(&self, states: &BTreeSet<StateId>, byte: u8) -> BTreeSet<StateId> {
        let mut next = BTreeSet::new();
        for &s in states {
            for &(range, to) in &self.states[s.index()].edges {
                if range.contains(byte) {
                    next.insert(to);
                }
            }
        }
        next
    }

    /// Returns `true` if the FSA accepts exactly `input`.
    pub fn accepts(&self, input: &[u8]) -> bool {
        let mut states: BTreeSet<StateId> = BTreeSet::new();
        states.insert(self.start);
        for &b in input {
            states = self.step(&states, b);
            if states.is_empty() {
                return false;
            }
        }
        states.iter().any(|s| self.is_final(*s))
    }

    /// Classifies the remaining bytes of a context-dependent token against
    /// this expanded-suffix automaton (paper §3.2): the remainder is
    /// [`SuffixMatch::Possible`] if it is a prefix of an accepted string or
    /// starts with an accepted string, and [`SuffixMatch::Rejected`]
    /// otherwise.
    pub fn match_remaining(&self, remaining: &[u8]) -> SuffixMatch {
        let mut states: BTreeSet<StateId> = BTreeSet::new();
        states.insert(self.start);
        if states.iter().any(|s| self.is_final(*s)) {
            return SuffixMatch::Possible;
        }
        for &b in remaining {
            states = self.step(&states, b);
            if states.is_empty() {
                return SuffixMatch::Rejected;
            }
            if states.iter().any(|s| self.is_final(*s)) {
                // The remainder starts with an accepted expanded suffix.
                return SuffixMatch::Possible;
            }
        }
        // Consumed every byte with live states: the remainder is a prefix of
        // an accepted string.
        SuffixMatch::Possible
    }

    /// Merges `other` into `self` as an alternative (language union). The
    /// other automaton's start-state edges are copied onto this automaton's
    /// start state.
    pub fn union_with(&mut self, other: &Fsa) {
        if other.states.len() == 1 && other.states[0].edges.is_empty() && !other.states[0].is_final
        {
            return;
        }
        let offset = self.states.len() as u32;
        for state in &other.states {
            let mut new_state = State {
                edges: Vec::with_capacity(state.edges.len()),
                is_final: state.is_final,
            };
            for &(range, to) in &state.edges {
                new_state.edges.push((range, StateId(to.0 + offset)));
            }
            self.states.push(new_state);
        }
        // Copy the other start's edges and finality onto our start.
        let other_start = StateId(other.start.0 + offset);
        let copied: Vec<(ByteRange, StateId)> = self.states[other_start.index()].edges.clone();
        let other_final = self.states[other_start.index()].is_final;
        let start_idx = self.start.index();
        self.states[start_idx].edges.extend(copied);
        if other_final {
            self.states[start_idx].is_final = true;
        }
    }

    /// Total number of edges, mostly for statistics and tests.
    pub fn edge_count(&self) -> usize {
        self.states.iter().map(|s| s.edges.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn literal_fsa(s: &[u8]) -> Fsa {
        let mut fsa = Fsa::new();
        let mut cur = fsa.start();
        for &b in s {
            let next = fsa.add_state();
            fsa.add_edge(cur, ByteRange::new(b, b), next);
            cur = next;
        }
        fsa.set_final(cur, true);
        fsa
    }

    #[test]
    fn accepts_literal() {
        let fsa = literal_fsa(b"abc");
        assert!(fsa.accepts(b"abc"));
        assert!(!fsa.accepts(b"ab"));
        assert!(!fsa.accepts(b"abcd"));
        assert!(!fsa.accepts(b"abd"));
    }

    #[test]
    fn match_remaining_prefix_and_superstring() {
        let fsa = literal_fsa(b", \"");
        // A strict prefix of an accepted string.
        assert_eq!(fsa.match_remaining(b","), SuffixMatch::Possible);
        // Starts with an accepted string, extra bytes afterwards.
        assert_eq!(fsa.match_remaining(b", \"abc"), SuffixMatch::Possible);
        // Diverges immediately.
        assert_eq!(fsa.match_remaining(b"x"), SuffixMatch::Rejected);
        // Diverges after the prefix.
        assert_eq!(fsa.match_remaining(b",x"), SuffixMatch::Rejected);
    }

    #[test]
    fn empty_remaining_is_possible() {
        let fsa = literal_fsa(b"]");
        assert_eq!(fsa.match_remaining(b""), SuffixMatch::Possible);
    }

    #[test]
    fn union_accepts_both_languages() {
        let mut a = literal_fsa(b"],");
        let b = literal_fsa(b"}");
        a.union_with(&b);
        assert!(a.accepts(b"],"));
        assert!(a.accepts(b"}"));
        assert!(!a.accepts(b"],}"));
        assert_eq!(a.match_remaining(b"}x"), SuffixMatch::Possible);
        assert_eq!(a.match_remaining(b"]x"), SuffixMatch::Rejected);
    }

    #[test]
    fn final_start_state_accepts_empty() {
        let mut fsa = Fsa::new();
        let s = fsa.start();
        fsa.set_final(s, true);
        assert!(fsa.accepts(b""));
        assert_eq!(fsa.match_remaining(b"anything"), SuffixMatch::Possible);
    }

    #[test]
    fn union_with_empty_is_noop() {
        let mut a = literal_fsa(b"x");
        let before = a.len();
        a.union_with(&Fsa::new());
        assert_eq!(a.len(), before);
    }
}
