//! Extraction of *expanded suffix* automata for context expansion
//! (paper §3.2, Algorithm 2).
//!
//! For a rule `R`, the expanded suffix automaton `A_ctx(R)` over-approximates
//! the set of byte strings that can immediately follow a completed match of
//! `R` in some parent context. A context-dependent token whose remaining part
//! after completing `R` can neither be a prefix of a string in `A_ctx(R)` nor
//! start with one is certainly invalid and is reclassified as
//! context-independent (rejected) during preprocessing.
//!
//! Following Algorithm 2, the extraction walks the parent rules' automata
//! along character (byte) edges only and stops — conservatively accepting —
//! at nodes that carry rule-reference edges (their continuation would require
//! descending into another rule). Two refinements are applied on top of the
//! paper's formulation, both of which only make the approximation tighter
//! while remaining sound:
//!
//! * when the walk reaches the **end of a parent rule**, it follows the
//!   "pop": it continues from every site that references that parent rule
//!   (rather than conservatively accepting everything), and
//! * a final node of an **unreferenced root rule** contributes nothing: after
//!   the root completes, the generation ends and no byte may follow.

use std::collections::HashMap;

use crate::fsa::{Fsa, StateId};
use crate::pda::{NodeId, Pda, PdaEdge, PdaRuleId};
use crate::utf8::ByteRange;

/// Extracts the expanded suffix automaton for a single rule.
///
/// If no edge in the PDA references `rule` (it is only used as the root), the
/// returned automaton accepts nothing: after the root rule completes, no
/// further bytes may follow.
///
/// # Examples
///
/// ```
/// use xg_automata::{build_pda, extract_suffix_fsa, PdaBuildOptions};
///
/// let grammar = xg_grammar::parse_ebnf(r#"
///     root ::= "[" item ("," item)* "]"
///     item ::= [a-z]+
/// "#, "root").unwrap();
/// let pda = build_pda(&grammar, &PdaBuildOptions { inline_rules: false, ..Default::default() });
/// let item = pda.rules().iter().position(|r| r.name == "item").unwrap();
/// let fsa = extract_suffix_fsa(&pda, xg_automata::PdaRuleId(item as u32));
/// // After an item, either a comma (then another item) or `]` may follow.
/// assert!(fsa.match_remaining(b",") == xg_automata::SuffixMatch::Possible);
/// assert!(fsa.match_remaining(b"]") == xg_automata::SuffixMatch::Possible);
/// assert!(fsa.match_remaining(b"}") == xg_automata::SuffixMatch::Rejected);
/// ```
pub fn extract_suffix_fsa(pda: &Pda, rule: PdaRuleId) -> Fsa {
    Extractor::new(pda).extract(rule)
}

/// Extracts expanded suffix automata for every rule of the PDA, indexed by
/// [`PdaRuleId`].
pub fn extract_all_suffix_fsas(pda: &Pda) -> Vec<Fsa> {
    let extractor = Extractor::new(pda);
    (0..pda.rules().len())
        .map(|i| extractor.extract(PdaRuleId(i as u32)))
        .collect()
}

/// Temporary graph node used before epsilon elimination.
#[derive(Debug, Default, Clone)]
struct TmpState {
    byte_edges: Vec<(ByteRange, usize)>,
    eps_edges: Vec<usize>,
    is_final: bool,
}

struct Extractor<'a> {
    pda: &'a Pda,
    /// For every rule, the list of return targets of edges referencing it.
    referencing_targets: Vec<Vec<NodeId>>,
    root_referenced: bool,
}

impl<'a> Extractor<'a> {
    fn new(pda: &'a Pda) -> Self {
        let mut referencing_targets: Vec<Vec<NodeId>> = vec![Vec::new(); pda.rules().len()];
        for node in pda.nodes() {
            for edge in &node.edges {
                if let PdaEdge::Rule { rule, target } = edge {
                    referencing_targets[rule.index()].push(*target);
                }
            }
        }
        let root_referenced = !referencing_targets[pda.root().index()].is_empty();
        Extractor {
            pda,
            referencing_targets,
            root_referenced,
        }
    }

    fn extract(&self, rule: PdaRuleId) -> Fsa {
        // Temporary graph: state 0 is the synthetic start; PDA nodes are
        // mapped lazily.
        let mut states: Vec<TmpState> = vec![TmpState::default()];
        let mut mapping: HashMap<NodeId, usize> = HashMap::new();
        let mut worklist: Vec<NodeId> = Vec::new();

        let get_state = |node: NodeId,
                         states: &mut Vec<TmpState>,
                         mapping: &mut HashMap<NodeId, usize>,
                         worklist: &mut Vec<NodeId>| {
            *mapping.entry(node).or_insert_with(|| {
                states.push(TmpState::default());
                worklist.push(node);
                states.len() - 1
            })
        };

        for &target in &self.referencing_targets[rule.index()] {
            let s = get_state(target, &mut states, &mut mapping, &mut worklist);
            states[0].eps_edges.push(s);
        }

        while let Some(node_id) = worklist.pop() {
            let state_idx = mapping[&node_id];
            let node = self.pda.node(node_id);
            let has_rule_edge = node.edges.iter().any(|e| matches!(e, PdaEdge::Rule { .. }));
            if has_rule_edge {
                // The continuation descends into another rule, which the
                // extraction does not follow: accept conservatively.
                states[state_idx].is_final = true;
                continue;
            }
            for edge in &node.edges {
                if let PdaEdge::Bytes { range, target } = edge {
                    let t = get_state(*target, &mut states, &mut mapping, &mut worklist);
                    states[state_idx].byte_edges.push((*range, t));
                }
            }
            if node.is_final {
                let node_rule = node.rule;
                if node_rule == self.pda.root() && !self.root_referenced {
                    // End of generation: contributes nothing.
                } else {
                    // Follow the pop: continue from every site referencing the
                    // completed parent rule. If nothing references it (dead
                    // rule), fall back to accepting conservatively.
                    let targets = &self.referencing_targets[node_rule.index()];
                    if targets.is_empty() && node_rule != self.pda.root() {
                        states[state_idx].is_final = true;
                    }
                    for &target in targets {
                        let t = get_state(target, &mut states, &mut mapping, &mut worklist);
                        states[state_idx].eps_edges.push(t);
                    }
                }
            }
        }

        eliminate_epsilon_to_fsa(&states)
    }
}

/// Converts the temporary epsilon-carrying graph into an epsilon-free
/// [`Fsa`]: each state's edges become the union of the byte edges of its
/// epsilon closure, and a state is final if its closure contains a final
/// state.
fn eliminate_epsilon_to_fsa(states: &[TmpState]) -> Fsa {
    let n = states.len();
    let mut fsa = Fsa::new();
    // State 0 maps to the FSA start; the rest are appended in order.
    let ids: Vec<StateId> = (0..n)
        .map(|i| if i == 0 { fsa.start() } else { fsa.add_state() })
        .collect();
    for (i, id) in ids.iter().enumerate() {
        // Epsilon closure of i.
        let mut visited = vec![false; n];
        let mut stack = vec![i];
        visited[i] = true;
        let mut is_final = false;
        while let Some(cur) = stack.pop() {
            if states[cur].is_final {
                is_final = true;
            }
            for &(range, target) in &states[cur].byte_edges {
                fsa.add_edge(*id, range, ids[target]);
            }
            for &next in &states[cur].eps_edges {
                if !visited[next] {
                    visited[next] = true;
                    stack.push(next);
                }
            }
        }
        fsa.set_final(*id, is_final);
    }
    fsa
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build_pda, PdaBuildOptions};
    use crate::fsa::SuffixMatch;

    fn no_inline() -> PdaBuildOptions {
        PdaBuildOptions {
            inline_rules: false,
            ..Default::default()
        }
    }

    fn rule_id(pda: &Pda, name: &str) -> PdaRuleId {
        PdaRuleId(
            pda.rules()
                .iter()
                .position(|r| r.name == name)
                .unwrap_or_else(|| panic!("rule {name} not found")) as u32,
        )
    }

    #[test]
    fn paper_example_array_of_strings() {
        // The grammar of Figure 3: after a string inside an array, the only
        // valid continuations start with `,` or `]`; free text is rejected.
        let g = xg_grammar::parse_ebnf(
            r#"
            main ::= array | str
            array ::= "[" ((str | array) ",")* (str | array) "]"
            str ::= "\"" [^"\\]* "\""
            "#,
            "main",
        )
        .unwrap();
        let pda = build_pda(&g, &no_inline());
        let fsa = extract_suffix_fsa(&pda, rule_id(&pda, "str"));
        assert_eq!(fsa.match_remaining(b","), SuffixMatch::Possible);
        assert_eq!(fsa.match_remaining(b"]"), SuffixMatch::Possible);
        assert_eq!(fsa.match_remaining(b",\""), SuffixMatch::Possible);
        // `ab` after closing a string can never be valid.
        assert_eq!(fsa.match_remaining(b"ab"), SuffixMatch::Rejected);
        assert_eq!(fsa.match_remaining(b"a\"b"), SuffixMatch::Rejected);
    }

    #[test]
    fn root_rule_has_empty_suffix_language() {
        let g = xg_grammar::parse_ebnf(
            r#"
            root ::= "a" inner
            inner ::= "b"
            "#,
            "root",
        )
        .unwrap();
        let pda = build_pda(&g, &no_inline());
        let fsa = extract_suffix_fsa(&pda, rule_id(&pda, "root"));
        // Nothing references root, so any remaining bytes are rejected.
        assert_eq!(fsa.match_remaining(b"x"), SuffixMatch::Rejected);
        assert!(!fsa.has_final_state());
    }

    #[test]
    fn suffix_stops_at_rule_references() {
        // After `item`, the continuation is ";" then another rule reference;
        // the extraction must include ";" and stop there.
        let g = xg_grammar::parse_ebnf(
            r#"
            root ::= item ";" tail
            item ::= [a-z]+
            tail ::= [0-9]+
            "#,
            "root",
        )
        .unwrap();
        let pda = build_pda(&g, &no_inline());
        let fsa = extract_suffix_fsa(&pda, rule_id(&pda, "item"));
        assert_eq!(fsa.match_remaining(b";"), SuffixMatch::Possible);
        // After ";" the continuation enters `tail`, which is unknown to the
        // extraction, so anything after ";" remains possible.
        assert_eq!(fsa.match_remaining(b";x"), SuffixMatch::Possible);
        assert_eq!(fsa.match_remaining(b"0"), SuffixMatch::Rejected);
    }

    #[test]
    fn pop_following_refines_rules_referenced_at_parent_ends() {
        // `val` is referenced at the very end of `pair`; a plain Algorithm-2
        // extraction would accept everything after `val`. Following the pop
        // into `obj` shows that only `,` or `}` can follow.
        let g = xg_grammar::parse_ebnf(
            r#"
            root ::= obj
            obj ::= "{" (pair ("," pair)*)? "}"
            pair ::= "\"" [a-z]+ "\"" ":" val
            val ::= "\"" [a-z]* "\"" | [0-9]+
            "#,
            "root",
        )
        .unwrap();
        let pda = build_pda(&g, &no_inline());
        let fsa = extract_suffix_fsa(&pda, rule_id(&pda, "val"));
        assert_eq!(fsa.match_remaining(b","), SuffixMatch::Possible);
        assert_eq!(fsa.match_remaining(b"}"), SuffixMatch::Possible);
        assert_eq!(fsa.match_remaining(b",\"key"), SuffixMatch::Possible);
        assert_eq!(fsa.match_remaining(b"abc"), SuffixMatch::Rejected);
        assert_eq!(fsa.match_remaining(b":"), SuffixMatch::Rejected);
    }

    #[test]
    fn recursive_pop_chains_terminate() {
        // Deep mutual recursion where every rule ends with a reference to the
        // next; extraction must terminate and stay sound.
        let g = xg_grammar::parse_ebnf(
            r#"
            root ::= a "!"
            a ::= "x" b | "x"
            b ::= "y" a | "y"
            "#,
            "root",
        )
        .unwrap();
        let pda = build_pda(&g, &no_inline());
        for name in ["a", "b"] {
            let fsa = extract_suffix_fsa(&pda, rule_id(&pda, name));
            // `!` eventually follows every completed a/b chain.
            assert_eq!(fsa.match_remaining(b"!"), SuffixMatch::Possible);
            assert_eq!(fsa.match_remaining(b"q"), SuffixMatch::Rejected);
        }
    }

    #[test]
    fn all_suffix_fsas_cover_every_rule() {
        let g = xg_grammar::builtin::json_grammar();
        let pda = build_pda(&g, &no_inline());
        let fsas = extract_all_suffix_fsas(&pda);
        assert_eq!(fsas.len(), pda.rules().len());
    }
}
