//! Hashcons interning of PDA states.
//!
//! Thompson construction (even after epsilon elimination and the local node
//! merging of [`crate::optimize`]) leaves the automaton with many states
//! whose *outgoing* structure is identical: same rule, same finality, same
//! edges. Such states are indistinguishable — any word accepted from one is
//! accepted from the other — so they can share a single representative.
//!
//! [`intern_states`] hashconses states bottom-up: each pass keys every node
//! by its structural signature `(rule, is_final, edges)` in a hash table,
//! redirects every reference to a duplicate onto its first (canonical)
//! occurrence, and repeats until a fixpoint — collapsing a duplicated
//! sub-DAG one level per pass, exactly like expression hashconsing in
//! `xg-grammar`. Complementary to
//! [`merge_equivalent_nodes`](crate::optimize::merge_equivalent_nodes),
//! which merges *successors* of one node locally; interning dedupes
//! structure globally across the whole automaton.

use std::collections::HashMap;

use crate::pda::{NodeId, Pda, PdaEdge, PdaRuleId};

/// Counters of one [`intern_states`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StateInternStats {
    /// Signature lookups served by an existing canonical state (the looked-up
    /// state was a duplicate and got redirected).
    pub hits: u64,
    /// Signature lookups that made the state the canonical representative.
    pub misses: u64,
    /// Number of states removed (= `hits`, kept separately for readability).
    pub merged: usize,
    /// Fixpoint passes executed.
    pub passes: usize,
}

impl StateInternStats {
    /// Fraction of signature lookups that deduplicated a state.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.hits as f64 / total as f64
    }
}

/// Structural signature of a PDA node: two nodes with equal signatures accept
/// exactly the same byte strings (with the same stack effects).
type Signature = (PdaRuleId, bool, Vec<PdaEdge>);

/// Hashconses the states of a PDA in place, then compacts it.
///
/// Safe unconditionally: only *incoming* references are redirected, and the
/// canonical state has identical outgoing behavior by construction.
///
/// # Examples
///
/// ```
/// use xg_automata::{build_pda, intern_states, PdaBuildOptions};
///
/// // Skip merging so duplicates survive construction.
/// let options = PdaBuildOptions {
///     merge_nodes: false,
///     ..Default::default()
/// };
/// let grammar = xg_grammar::parse_ebnf(
///     r#"root ::= ("ab" | "cb") ("ab" | "cb")"#,
///     "root",
/// ).unwrap();
/// let mut pda = build_pda(&grammar, &options);
/// let before = pda.node_count();
/// let stats = intern_states(&mut pda);
/// assert!(stats.merged > 0);
/// assert!(pda.node_count() < before);
/// ```
pub fn intern_states(pda: &mut Pda) -> StateInternStats {
    let mut stats = StateInternStats::default();
    // States already redirected in an earlier pass; they are unreferenced and
    // must not re-enter the signature table (they would match their canonical
    // representative forever, preventing the fixpoint from being reached).
    let mut dead = vec![false; pda.nodes.len()];
    loop {
        stats.passes += 1;
        let mut table: HashMap<Signature, NodeId> = HashMap::with_capacity(pda.nodes.len());
        let mut redirect: Vec<NodeId> = (0..pda.nodes.len() as u32).map(NodeId).collect();
        let mut merged_this_pass = 0usize;
        for (i, node) in pda.nodes.iter().enumerate() {
            if dead[i] {
                continue;
            }
            let sig = (node.rule, node.is_final, node.edges.clone());
            match table.get(&sig) {
                Some(&canonical) => {
                    stats.hits += 1;
                    redirect[i] = canonical;
                    dead[i] = true;
                    merged_this_pass += 1;
                }
                None => {
                    stats.misses += 1;
                    table.insert(sig, NodeId(i as u32));
                }
            }
        }
        if merged_this_pass == 0 {
            break;
        }
        stats.merged += merged_this_pass;
        for node in &mut pda.nodes {
            for edge in &mut node.edges {
                match edge {
                    PdaEdge::Bytes { target, .. } | PdaEdge::Rule { target, .. } => {
                        *target = redirect[target.index()];
                    }
                }
            }
        }
        for rule in &mut pda.rules {
            rule.start = redirect[rule.start.index()];
        }
    }
    if stats.merged > 0 {
        *pda = pda.compact();
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build_pda, PdaBuildOptions};
    use crate::exec::SimpleMatcher;

    fn no_merge_options() -> PdaBuildOptions {
        PdaBuildOptions {
            merge_nodes: false,
            ..Default::default()
        }
    }

    #[test]
    fn interning_preserves_the_language() {
        let grammar = xg_grammar::parse_ebnf(
            r#"
            root ::= "[" num ("," num)* "]"
            num  ::= [0-9]+
            "#,
            "root",
        )
        .unwrap();
        let mut pda = build_pda(&grammar, &no_merge_options());
        let reference = pda.clone();
        let stats = intern_states(&mut pda);
        assert_eq!(pda.check_consistency(), Ok(()));
        assert!(stats.passes >= 1);
        let cases: [&[u8]; 6] = [b"[1]", b"[12,3]", b"[1,2,3]", b"[]", b"[1,]", b"1"];
        for case in cases {
            assert_eq!(
                SimpleMatcher::new(&pda).accepts(case),
                SimpleMatcher::new(&reference).accepts(case),
                "language changed on {case:?}"
            );
        }
    }

    #[test]
    fn duplicate_branches_are_shared() {
        // Two structurally identical alternatives produce duplicated suffix
        // states that the interner collapses.
        let grammar =
            xg_grammar::parse_ebnf(r#"root ::= ("abc" | "xbc") ("abc" | "xbc")"#, "root").unwrap();
        let mut pda = build_pda(&grammar, &no_merge_options());
        let before = pda.node_count();
        let stats = intern_states(&mut pda);
        assert!(stats.merged > 0, "expected duplicate states to merge");
        assert_eq!(stats.merged as u64, stats.hits);
        assert!(pda.node_count() < before);
        assert!(stats.hit_rate() > 0.0);
        assert!(SimpleMatcher::new(&pda).accepts(b"abcxbc"));
        assert!(!SimpleMatcher::new(&pda).accepts(b"abc"));
    }

    #[test]
    fn interning_is_idempotent() {
        let grammar = xg_grammar::builtin::json_grammar();
        let mut pda = build_pda(&grammar, &no_merge_options());
        intern_states(&mut pda);
        let nodes_after_first = pda.node_count();
        let second = intern_states(&mut pda);
        assert_eq!(second.merged, 0);
        assert_eq!(pda.node_count(), nodes_after_first);
    }
}
