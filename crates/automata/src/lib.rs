//! Byte-level automata substrate for the XGrammar reproduction.
//!
//! This crate compiles grammars from `xg-grammar` into the byte-level
//! pushdown automaton (PDA) the paper's engine executes, and provides the
//! automaton-level machinery the core engine builds on:
//!
//! * [`utf8`] — compilation of Unicode ranges into UTF-8 byte-range
//!   sequences, so every automaton edge consumes exactly one byte,
//! * [`fsa`] — a small byte-level NFA used for expanded-suffix automata and
//!   by the regex/FSM baseline,
//! * [`pda`] — the PDA data structure (per-rule automata, byte edges and
//!   rule-reference edges),
//! * [`build_pda`] — grammar → PDA compilation including rule inlining and
//!   epsilon elimination,
//! * [`optimize`] — node merging (paper §3.4),
//! * [`intern_states`] — hashcons interning of structurally identical PDA
//!   states (global dedup, complementing the local node merging),
//! * [`extract_suffix_fsa`] — expanded-suffix extraction for context
//!   expansion (paper §3.2, Algorithm 2),
//! * [`SimpleMatcher`] — a reference multi-stack executor (the "naive PDA"
//!   baseline),
//! * [`multipattern`] — an Aho–Corasick automaton (plus the naive reference
//!   scanner) for trigger scanning in structural-tag dispatch.
//!
//! # Examples
//!
//! ```
//! use xg_automata::{build_pda_default, SimpleMatcher};
//!
//! let grammar = xg_grammar::builtin::json_grammar();
//! let pda = build_pda_default(&grammar);
//! assert!(SimpleMatcher::new(&pda).accepts(br#"{"answer": 42}"#));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod build;
pub mod exec;
pub mod fsa;
pub mod intern;
pub mod multipattern;
pub mod optimize;
pub mod pda;
pub mod suffix;
pub mod utf8;

pub use build::{build_pda, build_pda_default, inline_fragment_rules, PdaBuildOptions};
pub use exec::{epsilon_closure, MatchStack, SimpleMatcher, StepResult};
pub use fsa::{Fsa, StateId, SuffixMatch};
pub use intern::{intern_states, StateInternStats};
pub use multipattern::{AcState, AhoCorasick, NaiveMultiPattern};
pub use pda::{NodeId, Pda, PdaEdge, PdaNode, PdaRule, PdaRuleId, PdaStats};
pub use suffix::{extract_all_suffix_fsas, extract_suffix_fsa};
pub use utf8::{utf8_sequences, ByteRange, Utf8Sequence};
