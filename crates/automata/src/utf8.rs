//! Compilation of Unicode scalar-value ranges into UTF-8 byte-range
//! sequences.
//!
//! The pushdown automaton in this reproduction is *byte level* (as in the
//! paper, §3): every edge consumes exactly one byte. A character class such
//! as `[^"\]` therefore has to be lowered into a small automaton over bytes.
//! This module implements the classic UTF-8 range-splitting algorithm (as
//! popularized by the `utf8-ranges`/`regex-syntax` crates, reimplemented here
//! from the algorithm description): a scalar range is split into at most a
//! handful of *sequences*, where each sequence is a list of 1–4 inclusive
//! byte ranges and the cartesian product of the byte ranges enumerates
//! exactly the UTF-8 encodings of the characters in the range.

/// An inclusive range of byte values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ByteRange {
    /// Lowest byte (inclusive).
    pub lo: u8,
    /// Highest byte (inclusive).
    pub hi: u8,
}

impl ByteRange {
    /// Creates a byte range.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn new(lo: u8, hi: u8) -> Self {
        assert!(lo <= hi, "invalid byte range");
        ByteRange { lo, hi }
    }

    /// Returns `true` if `b` is inside the range.
    #[inline]
    pub fn contains(&self, b: u8) -> bool {
        self.lo <= b && b <= self.hi
    }

    /// Number of bytes covered by the range.
    #[inline]
    pub fn len(&self) -> usize {
        (self.hi - self.lo) as usize + 1
    }

    /// Byte ranges are never empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// A sequence of byte ranges whose cartesian product is a set of UTF-8
/// encodings (all of the same length).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Utf8Sequence {
    /// One byte range per encoded byte (1 to 4 entries).
    pub ranges: Vec<ByteRange>,
}

impl Utf8Sequence {
    /// Number of bytes in every string matched by this sequence.
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    /// Sequences always contain at least one byte range.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Returns `true` if `bytes` (of the same length) is matched.
    pub fn matches(&self, bytes: &[u8]) -> bool {
        bytes.len() == self.ranges.len()
            && self.ranges.iter().zip(bytes).all(|(r, &b)| r.contains(b))
    }
}

/// Splits an inclusive Unicode scalar range into UTF-8 byte-range sequences.
///
/// The input must not include the surrogate range (U+D800..=U+DFFF); the
/// grammar crate's `CharClass::normalized_ranges` already guarantees that.
///
/// # Examples
///
/// ```
/// use xg_automata::utf8::utf8_sequences;
///
/// // ASCII stays a single one-byte sequence.
/// let seqs = utf8_sequences('a' as u32, 'z' as u32);
/// assert_eq!(seqs.len(), 1);
/// assert_eq!(seqs[0].ranges.len(), 1);
///
/// // The full Unicode range needs several sequences of different lengths.
/// let all = utf8_sequences(0, 0x10FFFF);
/// assert!(all.len() >= 4);
/// ```
pub fn utf8_sequences(start: u32, end: u32) -> Vec<Utf8Sequence> {
    let mut out = Vec::new();
    if start > end {
        return out;
    }
    split(start.min(0x10FFFF), end.min(0x10FFFF), &mut out);
    out
}

fn encoded_len(cp: u32) -> usize {
    match cp {
        0..=0x7F => 1,
        0x80..=0x7FF => 2,
        0x800..=0xFFFF => 3,
        _ => 4,
    }
}

fn encode(cp: u32) -> ([u8; 4], usize) {
    let c = char::from_u32(cp).unwrap_or('\u{FFFD}');
    let mut buf = [0u8; 4];
    let s = c.encode_utf8(&mut buf);
    let len = s.len();
    (buf, len)
}

fn split(start: u32, end: u32, out: &mut Vec<Utf8Sequence>) {
    if start > end {
        return;
    }
    // Skip the surrogate gap defensively.
    if (0xD800..=0xDFFF).contains(&start) {
        return split(0xE000.max(start), end, out);
    }
    if end >= 0xD800 && start < 0xD800 && end <= 0xDFFF {
        return split(start, 0xD7FF, out);
    }
    if start < 0xD800 && end > 0xDFFF {
        split(start, 0xD7FF, out);
        split(0xE000, end, out);
        return;
    }
    // Split at encoding-length boundaries.
    for &boundary in &[0x7Fu32, 0x7FF, 0xFFFF] {
        if start <= boundary && boundary < end {
            split(start, boundary, out);
            split(boundary + 1, end, out);
            return;
        }
    }
    let len = encoded_len(start);
    debug_assert_eq!(len, encoded_len(end));
    if len == 1 {
        out.push(Utf8Sequence {
            ranges: vec![ByteRange::new(start as u8, end as u8)],
        });
        return;
    }
    // Try to split so that all continuation-byte positions cover their full
    // 0x80..=0xBF range; then the sequence factorizes into independent
    // per-byte ranges.
    for i in 1..len as u32 {
        let max_gap: u32 = (1 << (6 * i)) - 1;
        if (start & max_gap) != 0 {
            let boundary = start | max_gap;
            if boundary < end {
                split(start, boundary, out);
                split(boundary + 1, end, out);
                return;
            }
        }
        if (end & max_gap) != max_gap {
            let boundary = (end & !max_gap).saturating_sub(1);
            if boundary >= start {
                split(start, boundary, out);
                split(boundary + 1, end, out);
                return;
            }
        }
    }
    // All trailing positions are full; build per-byte ranges from the
    // encodings of the endpoints.
    let (sb, slen) = encode(start);
    let (eb, elen) = encode(end);
    debug_assert_eq!(slen, len);
    debug_assert_eq!(elen, len);
    let ranges = (0..len)
        .map(|i| ByteRange::new(sb[i], eb[i]))
        .collect::<Vec<_>>();
    out.push(Utf8Sequence { ranges });
}

/// Merges a sorted list of byte ranges, coalescing overlapping or adjacent
/// entries.
pub fn merge_byte_ranges(mut ranges: Vec<ByteRange>) -> Vec<ByteRange> {
    ranges.sort_by_key(|r| (r.lo, r.hi));
    let mut out: Vec<ByteRange> = Vec::with_capacity(ranges.len());
    for r in ranges {
        match out.last_mut() {
            Some(last) if r.lo as u16 <= last.hi as u16 + 1 => {
                last.hi = last.hi.max(r.hi);
            }
            _ => out.push(r),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    /// Brute-force check: the set of encodings produced by the sequences for
    /// `[start, end]` equals the set of UTF-8 encodings of the chars in the
    /// range.
    fn check_range(start: u32, end: u32) {
        let seqs = utf8_sequences(start, end);
        // Every char in range must be matched by exactly one sequence.
        for cp in start..=end {
            if let Some(c) = char::from_u32(cp) {
                let mut buf = [0u8; 4];
                let enc = c.encode_utf8(&mut buf).as_bytes().to_vec();
                let matching = seqs.iter().filter(|s| s.matches(&enc)).count();
                assert_eq!(
                    matching, 1,
                    "codepoint {cp:#x} matched {matching} sequences"
                );
            }
        }
        // No sequence may match an encoding of a char outside the range
        // (checked over a sample around the boundaries).
        let mut outside: HashSet<u32> = HashSet::new();
        for delta in 1..=64u32 {
            if start >= delta {
                outside.insert(start - delta);
            }
            outside.insert(end + delta);
        }
        for cp in outside {
            if cp > 0x10FFFF {
                continue;
            }
            if let Some(c) = char::from_u32(cp) {
                let mut buf = [0u8; 4];
                let enc = c.encode_utf8(&mut buf).as_bytes().to_vec();
                assert!(
                    !seqs.iter().any(|s| s.matches(&enc)),
                    "codepoint {cp:#x} wrongly matched for range {start:#x}..{end:#x}"
                );
            }
        }
    }

    #[test]
    fn ascii_range_is_single_sequence() {
        let seqs = utf8_sequences(b'0' as u32, b'9' as u32);
        assert_eq!(seqs.len(), 1);
        assert_eq!(seqs[0].ranges, vec![ByteRange::new(b'0', b'9')]);
    }

    #[test]
    fn two_byte_range() {
        check_range(0x80, 0x7FF);
    }

    #[test]
    fn three_byte_range_with_surrogate_gap() {
        check_range(0x800, 0xFFFF);
    }

    #[test]
    fn crossing_length_boundaries() {
        check_range(0x20, 0x900);
        check_range(0x7F, 0x80);
        check_range(0xFFFF, 0x10000);
    }

    #[test]
    fn narrow_multibyte_ranges() {
        check_range(0xE9, 0xE9); // é
        check_range(0x4E00, 0x4E10); // CJK slice
        check_range(0x1F600, 0x1F64F); // emoji block
    }

    #[test]
    fn full_unicode_range_is_small() {
        let seqs = utf8_sequences(0, 0x10FFFF);
        assert!(seqs.len() <= 16, "got {} sequences", seqs.len());
        // Spot-check a few encodings across lengths.
        for c in ['a', 'é', '你', '🎉'] {
            let mut buf = [0u8; 4];
            let enc = c.encode_utf8(&mut buf).as_bytes().to_vec();
            assert_eq!(seqs.iter().filter(|s| s.matches(&enc)).count(), 1);
        }
    }

    #[test]
    fn merge_byte_ranges_coalesces() {
        let merged = merge_byte_ranges(vec![
            ByteRange::new(10, 20),
            ByteRange::new(21, 30),
            ByteRange::new(15, 25),
            ByteRange::new(40, 50),
        ]);
        assert_eq!(merged, vec![ByteRange::new(10, 30), ByteRange::new(40, 50)]);
    }
}
