//! Structural optimizations of the pushdown automaton (paper §3.4).
//!
//! Rule inlining happens at the AST level in [`crate::build`]; this module
//! implements **node merging**: two successor nodes are merged when
//!
//! * they are pointed to by edges with the same label originating from the
//!   same node, and
//! * they are not pointed to by any other edge (and are not rule start
//!   nodes).
//!
//! Merging preserves the recognized language but reduces the number of
//! parallel stacks the executor has to maintain, which directly reduces
//! context-dependent token checking and mask merging work at runtime.

use std::collections::HashMap;

use crate::pda::{NodeId, Pda, PdaEdge};

/// Label key used to group edges for merging.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum LabelKey {
    Bytes(u8, u8),
    Rule(u32),
}

fn label_key(edge: &PdaEdge) -> LabelKey {
    match edge {
        PdaEdge::Bytes { range, .. } => LabelKey::Bytes(range.lo, range.hi),
        PdaEdge::Rule { rule, .. } => LabelKey::Rule(rule.0),
    }
}

/// Merges equivalent successor nodes in place until a fixed point is reached
/// (bounded by a small number of passes). Also removes duplicate edges.
///
/// Returns the number of nodes that were merged away.
pub fn merge_equivalent_nodes(pda: &mut Pda) -> usize {
    let mut total_merged = 0;
    for _ in 0..16 {
        let merged = merge_pass(pda);
        total_merged += merged;
        if merged == 0 {
            break;
        }
    }
    total_merged
}

fn merge_pass(pda: &mut Pda) -> usize {
    let n = pda.nodes.len();
    // In-degree: number of edges pointing at each node; rule starts get an
    // extra count so they are never merged away (they are referenced
    // implicitly by rule-reference edges and by the matcher itself).
    let mut in_degree = vec![0usize; n];
    for node in &pda.nodes {
        for edge in &node.edges {
            in_degree[edge.target().index()] += 1;
        }
    }
    for rule in &pda.rules {
        in_degree[rule.start.index()] += 2;
    }

    // Union-find style redirect table.
    let mut redirect: Vec<NodeId> = (0..n as u32).map(NodeId).collect();
    let mut merged_count = 0usize;

    for source in 0..n {
        // Group this node's edges by label.
        let mut groups: HashMap<LabelKey, Vec<NodeId>> = HashMap::new();
        for edge in &pda.nodes[source].edges {
            groups
                .entry(label_key(edge))
                .or_default()
                .push(edge.target());
        }
        for targets in groups.values() {
            if targets.len() < 2 {
                continue;
            }
            // Candidates: distinct targets with in-degree exactly equal to the
            // number of identical edges from this source (i.e. no other
            // incoming edges), in the same rule, not already redirected.
            let mut counts: HashMap<NodeId, usize> = HashMap::new();
            for t in targets {
                *counts.entry(*t).or_insert(0) += 1;
            }
            let mut mergeable: Vec<NodeId> = counts
                .iter()
                .filter(|(t, c)| {
                    in_degree[t.index()] == **c && redirect[t.index()] == **t && t.index() != source
                })
                .map(|(t, _)| *t)
                .collect();
            mergeable.sort();
            mergeable.dedup();
            if mergeable.len() < 2 {
                continue;
            }
            // All mergeable targets must belong to the same rule (they do by
            // construction, but keep the guard).
            let rule = pda.nodes[mergeable[0].index()].rule;
            if mergeable.iter().any(|t| pda.nodes[t.index()].rule != rule) {
                continue;
            }
            let representative = mergeable[0];
            for &victim in &mergeable[1..] {
                // Move the victim's edges onto the representative.
                let victim_edges = std::mem::take(&mut pda.nodes[victim.index()].edges);
                let victim_final = pda.nodes[victim.index()].is_final;
                let rep = &mut pda.nodes[representative.index()];
                rep.edges.extend(victim_edges);
                rep.is_final |= victim_final;
                redirect[victim.index()] = representative;
                merged_count += 1;
            }
        }
    }

    if merged_count == 0 {
        // Still deduplicate edges so repeated calls converge.
        dedup_edges(pda);
        return 0;
    }

    // Apply redirects (one level is enough: representatives are never
    // redirected within a pass because their in-degree includes the other
    // mergeable siblings' edges... but chase the chain defensively).
    let chase = |mut id: NodeId, redirect: &Vec<NodeId>| -> NodeId {
        for _ in 0..n {
            let next = redirect[id.index()];
            if next == id {
                return id;
            }
            id = next;
        }
        id
    };
    for node in &mut pda.nodes {
        for edge in &mut node.edges {
            match edge {
                PdaEdge::Bytes { target, .. } | PdaEdge::Rule { target, .. } => {
                    *target = chase(*target, &redirect);
                }
            }
        }
    }
    for rule in &mut pda.rules {
        rule.start = chase(rule.start, &redirect);
    }
    dedup_edges(pda);
    merged_count
}

/// Removes duplicate edges (same label and same target) from every node.
pub fn dedup_edges(pda: &mut Pda) {
    for node in &mut pda.nodes {
        node.edges.sort_by_key(|e| match e {
            PdaEdge::Bytes { range, target } => (0u8, range.lo as u32, range.hi as u32, target.0),
            PdaEdge::Rule { rule, target } => (1u8, rule.0, 0, target.0),
        });
        node.edges.dedup();
    }
}

#[cfg(test)]
mod tests {
    use crate::build::{build_pda, PdaBuildOptions};
    use crate::exec::SimpleMatcher;
    use xg_grammar::parse_ebnf;

    #[test]
    fn merging_reduces_node_count_on_common_prefixes() {
        // Two alternatives share the first character; without merging the
        // matcher forks immediately.
        let g = parse_ebnf(r#"root ::= "ax" | "ay" | "az""#, "root").unwrap();
        let unopt = build_pda(&g, &PdaBuildOptions::unoptimized());
        let opt = build_pda(
            &g,
            &PdaBuildOptions {
                merge_nodes: true,
                inline_rules: false,
                ..Default::default()
            },
        );
        assert!(opt.node_count() < unopt.node_count());
        for input in [&b"ax"[..], b"ay", b"az", b"aw", b"a", b"axx"] {
            assert_eq!(
                SimpleMatcher::new(&opt).accepts(input),
                SimpleMatcher::new(&unopt).accepts(input)
            );
        }
    }

    #[test]
    fn merging_reduces_stack_fanout() {
        let g = parse_ebnf(r#"root ::= "ax" | "ay" | "az""#, "root").unwrap();
        let unopt = build_pda(&g, &PdaBuildOptions::unoptimized());
        let opt = build_pda(
            &g,
            &PdaBuildOptions {
                merge_nodes: true,
                inline_rules: false,
                ..Default::default()
            },
        );
        let mut m_unopt = SimpleMatcher::new(&unopt);
        let mut m_opt = SimpleMatcher::new(&opt);
        m_unopt.advance_bytes(b"a");
        m_opt.advance_bytes(b"a");
        assert!(m_opt.stack_count() <= m_unopt.stack_count());
        assert_eq!(m_opt.stack_count(), 1);
    }

    #[test]
    fn merging_is_idempotent() {
        let g = xg_grammar::builtin::json_grammar();
        let mut pda = build_pda(&g, &PdaBuildOptions::unoptimized());
        let first = super::merge_equivalent_nodes(&mut pda);
        let second = super::merge_equivalent_nodes(&mut pda);
        assert!(first > 0);
        assert_eq!(second, 0);
        assert_eq!(pda.check_consistency(), Ok(()));
    }
}
