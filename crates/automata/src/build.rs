//! Compilation of a [`Grammar`] into a byte-level [`Pda`].
//!
//! The pipeline is:
//!
//! 1. **Rule inlining** (paper §3.4): small "fragment" rules that do not
//!    reference other rules are substituted into their parents, which both
//!    reduces stack traffic at runtime and makes context expansion more
//!    effective.
//! 2. **Thompson construction** per rule with temporary epsilon edges; every
//!    character class is lowered to byte level through the UTF-8 range
//!    compiler.
//! 3. **Epsilon elimination**, leaving only byte and rule-reference edges.
//! 4. Optional **node merging** (paper §3.4) to reduce nondeterminism.
//! 5. Compaction (unreachable rules/nodes removed, ids renumbered).

use std::collections::HashMap;

use xg_grammar::{Grammar, GrammarBuilder, GrammarExpr, RuleId};

use crate::optimize::merge_equivalent_nodes;
use crate::pda::{NodeId, Pda, PdaEdge, PdaNode, PdaRule, PdaRuleId};
use crate::utf8::{utf8_sequences, ByteRange};

/// Options controlling PDA construction, mirroring the ablation axes of the
/// paper's Table 3.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PdaBuildOptions {
    /// Inline small fragment rules into their parents (paper §3.4).
    pub inline_rules: bool,
    /// Merge equivalent successor nodes to reduce stack splitting
    /// (paper §3.4).
    pub merge_nodes: bool,
    /// Maximum AST size (expression node count) of a rule eligible for
    /// inlining.
    pub max_inline_rule_size: usize,
    /// Maximum AST size a rule body may reach through inlining.
    pub max_inlined_body_size: usize,
}

impl Default for PdaBuildOptions {
    fn default() -> Self {
        PdaBuildOptions {
            inline_rules: true,
            merge_nodes: true,
            max_inline_rule_size: 48,
            max_inlined_body_size: 4096,
        }
    }
}

impl PdaBuildOptions {
    /// Options with every optimization disabled (the "PDA baseline" row of
    /// the ablation study).
    pub fn unoptimized() -> Self {
        PdaBuildOptions {
            inline_rules: false,
            merge_nodes: false,
            ..Default::default()
        }
    }
}

/// Compiles a grammar into a byte-level PDA with the given options.
///
/// # Examples
///
/// ```
/// use xg_automata::{build_pda, PdaBuildOptions};
///
/// let grammar = xg_grammar::builtin::json_grammar();
/// let pda = build_pda(&grammar, &PdaBuildOptions::default());
/// assert!(pda.node_count() > 10);
/// ```
pub fn build_pda(grammar: &Grammar, options: &PdaBuildOptions) -> Pda {
    let inlined;
    let grammar = if options.inline_rules {
        inlined = inline_fragment_rules(grammar, options);
        &inlined
    } else {
        grammar
    };

    let mut builder = PdaBuilder::new(grammar);
    let mut pda = builder.build();
    debug_assert_eq!(pda.check_consistency(), Ok(()));
    if options.merge_nodes {
        merge_equivalent_nodes(&mut pda);
        debug_assert_eq!(pda.check_consistency(), Ok(()));
        // Hashcons interning: collapse globally duplicated states (identical
        // rule/finality/edges) that the local merge above cannot see.
        crate::intern::intern_states(&mut pda);
        debug_assert_eq!(pda.check_consistency(), Ok(()));
    }
    let pda = pda.compact();
    debug_assert_eq!(pda.check_consistency(), Ok(()));
    pda
}

/// Compiles a grammar with default options.
pub fn build_pda_default(grammar: &Grammar) -> Pda {
    build_pda(grammar, &PdaBuildOptions::default())
}

// ---------------------------------------------------------------------------
// Rule inlining (AST level)
// ---------------------------------------------------------------------------

fn expr_size(expr: &GrammarExpr) -> usize {
    match expr {
        GrammarExpr::Empty | GrammarExpr::RuleRef(_) => 1,
        GrammarExpr::Literal(bytes) => 1 + bytes.len() / 4,
        GrammarExpr::CharClass(_) | GrammarExpr::ByteClass(_) => 2,
        GrammarExpr::Sequence(items) | GrammarExpr::Choice(items) => {
            1 + items.iter().map(expr_size).sum::<usize>()
        }
        GrammarExpr::Repeat { expr, min, .. } => {
            // Bounded repetitions are expanded during construction.
            1 + expr_size(expr) * (*min).max(1) as usize
        }
    }
}

fn references(expr: &GrammarExpr) -> Vec<RuleId> {
    let mut out = Vec::new();
    expr.for_each_rule_ref(&mut |id| out.push(id));
    out
}

fn substitute(expr: &GrammarExpr, target: RuleId, replacement: &GrammarExpr) -> GrammarExpr {
    match expr {
        GrammarExpr::RuleRef(id) if *id == target => replacement.clone(),
        GrammarExpr::Sequence(items) => GrammarExpr::Sequence(
            items
                .iter()
                .map(|e| substitute(e, target, replacement))
                .collect(),
        ),
        GrammarExpr::Choice(items) => GrammarExpr::Choice(
            items
                .iter()
                .map(|e| substitute(e, target, replacement))
                .collect(),
        ),
        GrammarExpr::Repeat { expr, min, max } => GrammarExpr::Repeat {
            expr: Box::new(substitute(expr, target, replacement)),
            min: *min,
            max: *max,
        },
        other => other.clone(),
    }
}

/// Inlines fragment rules (small rules without references to other rules)
/// into their parents. The root rule is never inlined away; size limits keep
/// the automaton from exploding, as described in the paper.
pub fn inline_fragment_rules(grammar: &Grammar, options: &PdaBuildOptions) -> Grammar {
    let mut bodies: Vec<GrammarExpr> = grammar.rules().iter().map(|r| r.body.clone()).collect();
    let names: Vec<String> = grammar.rules().iter().map(|r| r.name.clone()).collect();
    let root = grammar.root();

    // A few passes are enough in practice: each pass inlines the current
    // leaves, which may turn their parents into leaves for the next pass.
    for _ in 0..8 {
        let mut inlinable: Vec<RuleId> = Vec::new();
        for (i, body) in bodies.iter().enumerate() {
            let id = RuleId(i as u32);
            if id == root {
                continue;
            }
            let refs = references(body);
            let self_recursive = refs.contains(&id);
            if !self_recursive && refs.is_empty() && expr_size(body) <= options.max_inline_rule_size
            {
                inlinable.push(id);
            }
        }
        if inlinable.is_empty() {
            break;
        }
        let mut changed = false;
        for target in inlinable {
            let replacement = bodies[target.index()].clone();
            for (i, body) in bodies.iter_mut().enumerate() {
                if i == target.index() {
                    continue;
                }
                if !references(body).contains(&target) {
                    continue;
                }
                let candidate = substitute(body, target, &replacement);
                if expr_size(&candidate) <= options.max_inlined_body_size {
                    *body = candidate;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Rebuild the grammar with the new bodies; rule ids are preserved because
    // rules are re-added in the original order. Unreferenced rules are kept
    // (PDA compaction removes them later).
    let mut builder = GrammarBuilder::new();
    for name in &names {
        builder.declare(name);
    }
    for (i, body) in bodies.into_iter().enumerate() {
        builder.set_body(RuleId(i as u32), body);
    }
    builder
        .build(&names[root.index()])
        .expect("re-building an already valid grammar cannot fail")
}

// ---------------------------------------------------------------------------
// Thompson construction with epsilon edges, then epsilon elimination
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
enum TmpEdge {
    Eps(usize),
    Bytes(ByteRange, usize),
    Rule(u32, usize),
}

#[derive(Debug, Default, Clone)]
struct TmpNode {
    edges: Vec<TmpEdge>,
    is_final: bool,
}

struct PdaBuilder<'a> {
    grammar: &'a Grammar,
    /// Map from grammar rule id to PDA rule id (dense over all rules; the
    /// final compaction pass drops unreachable ones).
    rule_map: HashMap<RuleId, PdaRuleId>,
}

impl<'a> PdaBuilder<'a> {
    fn new(grammar: &'a Grammar) -> Self {
        let mut rule_map = HashMap::new();
        for i in 0..grammar.rules().len() {
            rule_map.insert(RuleId(i as u32), PdaRuleId(i as u32));
        }
        PdaBuilder { grammar, rule_map }
    }

    fn build(&mut self) -> Pda {
        let mut nodes: Vec<PdaNode> = Vec::new();
        let mut rules: Vec<PdaRule> = Vec::new();
        for (i, rule) in self.grammar.rules().iter().enumerate() {
            let rule_id = PdaRuleId(i as u32);
            let (tmp_nodes, start) = self.build_rule(&rule.body);
            let eliminated = eliminate_epsilon(&tmp_nodes);
            // Append the rule's nodes to the global arena.
            let offset = nodes.len() as u32;
            for tmp in &eliminated {
                let mut edges = Vec::with_capacity(tmp.edges.len());
                for e in &tmp.edges {
                    match *e {
                        TmpEdge::Bytes(range, t) => edges.push(PdaEdge::Bytes {
                            range,
                            target: NodeId(offset + t as u32),
                        }),
                        TmpEdge::Rule(r, t) => edges.push(PdaEdge::Rule {
                            rule: self.rule_map[&RuleId(r)],
                            target: NodeId(offset + t as u32),
                        }),
                        TmpEdge::Eps(_) => unreachable!("epsilon edges were eliminated"),
                    }
                }
                nodes.push(PdaNode {
                    rule: rule_id,
                    edges,
                    is_final: tmp.is_final,
                });
            }
            rules.push(PdaRule {
                name: rule.name.clone(),
                start: NodeId(offset + start as u32),
            });
        }
        Pda {
            nodes,
            rules,
            root: self.rule_map[&self.grammar.root()],
        }
    }

    /// Builds the temporary (epsilon-carrying) automaton for one rule body.
    /// Returns the node list and the start index; the single final node is
    /// marked `is_final`.
    fn build_rule(&self, body: &GrammarExpr) -> (Vec<TmpNode>, usize) {
        let mut nodes: Vec<TmpNode> = vec![TmpNode::default(), TmpNode::default()];
        let (start, end) = (0usize, 1usize);
        self.compile(body, start, end, &mut nodes);
        nodes[end].is_final = true;
        (nodes, start)
    }

    fn new_node(nodes: &mut Vec<TmpNode>) -> usize {
        nodes.push(TmpNode::default());
        nodes.len() - 1
    }

    /// Compiles `expr` so that matching it leads from node `from` to node
    /// `to`.
    fn compile(&self, expr: &GrammarExpr, from: usize, to: usize, nodes: &mut Vec<TmpNode>) {
        match expr {
            GrammarExpr::Empty => {
                nodes[from].edges.push(TmpEdge::Eps(to));
            }
            GrammarExpr::Literal(bytes) => {
                if bytes.is_empty() {
                    nodes[from].edges.push(TmpEdge::Eps(to));
                    return;
                }
                let mut cur = from;
                for (i, &b) in bytes.iter().enumerate() {
                    let next = if i + 1 == bytes.len() {
                        to
                    } else {
                        Self::new_node(nodes)
                    };
                    nodes[cur]
                        .edges
                        .push(TmpEdge::Bytes(ByteRange::new(b, b), next));
                    cur = next;
                }
            }
            GrammarExpr::CharClass(cc) => {
                for range in cc.normalized_ranges() {
                    for seq in utf8_sequences(range.start as u32, range.end as u32) {
                        let mut cur = from;
                        let n = seq.ranges.len();
                        for (i, br) in seq.ranges.iter().enumerate() {
                            let next = if i + 1 == n {
                                to
                            } else {
                                Self::new_node(nodes)
                            };
                            nodes[cur].edges.push(TmpEdge::Bytes(*br, next));
                            cur = next;
                        }
                    }
                }
            }
            GrammarExpr::ByteClass(bc) => {
                // Raw byte ranges: one edge per range, no UTF-8 lowering.
                for (lo, hi) in bc.normalized_ranges() {
                    nodes[from]
                        .edges
                        .push(TmpEdge::Bytes(ByteRange::new(lo, hi), to));
                }
            }
            GrammarExpr::RuleRef(id) => {
                nodes[from].edges.push(TmpEdge::Rule(id.0, to));
            }
            GrammarExpr::Sequence(items) => {
                let mut cur = from;
                for (i, item) in items.iter().enumerate() {
                    let next = if i + 1 == items.len() {
                        to
                    } else {
                        Self::new_node(nodes)
                    };
                    self.compile(item, cur, next, nodes);
                    cur = next;
                }
                if items.is_empty() {
                    nodes[from].edges.push(TmpEdge::Eps(to));
                }
            }
            GrammarExpr::Choice(items) => {
                if items.is_empty() {
                    nodes[from].edges.push(TmpEdge::Eps(to));
                }
                for item in items {
                    self.compile(item, from, to, nodes);
                }
            }
            GrammarExpr::Repeat { expr, min, max } => {
                self.compile_repeat(expr, *min, *max, from, to, nodes);
            }
        }
    }

    fn compile_repeat(
        &self,
        expr: &GrammarExpr,
        min: u32,
        max: Option<u32>,
        from: usize,
        to: usize,
        nodes: &mut Vec<TmpNode>,
    ) {
        // Mandatory prefix: `min` sequential copies.
        let mut cur = from;
        for _ in 0..min {
            let next = Self::new_node(nodes);
            self.compile(expr, cur, next, nodes);
            cur = next;
        }
        match max {
            None => {
                // Kleene closure on the remainder: cur --eps--> to, and a loop
                // node allowing arbitrarily many further copies.
                let loop_entry = Self::new_node(nodes);
                nodes[cur].edges.push(TmpEdge::Eps(loop_entry));
                let loop_exit = Self::new_node(nodes);
                self.compile(expr, loop_entry, loop_exit, nodes);
                nodes[loop_exit].edges.push(TmpEdge::Eps(loop_entry));
                nodes[loop_entry].edges.push(TmpEdge::Eps(to));
            }
            Some(max) => {
                // Optional suffix: (max - min) copies, each skippable.
                let optional = max.saturating_sub(min);
                if optional == 0 {
                    nodes[cur].edges.push(TmpEdge::Eps(to));
                    return;
                }
                for _ in 0..optional {
                    let next = Self::new_node(nodes);
                    self.compile(expr, cur, next, nodes);
                    // Skipping the remaining copies goes straight to `to`.
                    nodes[cur].edges.push(TmpEdge::Eps(to));
                    cur = next;
                }
                nodes[cur].edges.push(TmpEdge::Eps(to));
            }
        }
    }
}

/// Eliminates epsilon edges from a temporary rule automaton: each node's new
/// edge set is the union of the non-epsilon edges of its epsilon closure, and
/// a node is final if any node of its closure is final.
fn eliminate_epsilon(nodes: &[TmpNode]) -> Vec<TmpNode> {
    let n = nodes.len();
    let mut out = vec![TmpNode::default(); n];
    for i in 0..n {
        // Depth-first epsilon closure.
        let mut visited = vec![false; n];
        let mut stack = vec![i];
        visited[i] = true;
        let mut is_final = false;
        let mut edges: Vec<TmpEdge> = Vec::new();
        while let Some(cur) = stack.pop() {
            if nodes[cur].is_final {
                is_final = true;
            }
            for e in &nodes[cur].edges {
                match *e {
                    TmpEdge::Eps(t) => {
                        if !visited[t] {
                            visited[t] = true;
                            stack.push(t);
                        }
                    }
                    other => edges.push(other),
                }
            }
        }
        // Deduplicate identical edges.
        edges.sort_by_key(edge_sort_key);
        edges.dedup_by_key(|e| edge_sort_key(e));
        out[i] = TmpNode { edges, is_final };
    }
    out
}

fn edge_sort_key(e: &TmpEdge) -> (u8, u32, u32, usize) {
    match *e {
        TmpEdge::Bytes(r, t) => (0, r.lo as u32, r.hi as u32, t),
        TmpEdge::Rule(r, t) => (1, r, 0, t),
        TmpEdge::Eps(t) => (2, 0, 0, t),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::SimpleMatcher;
    use xg_grammar::parse_ebnf;

    fn accepts(pda: &Pda, input: &[u8]) -> bool {
        SimpleMatcher::new(pda).accepts(input)
    }

    #[test]
    fn literal_grammar_builds_and_matches() {
        let g = parse_ebnf(r#"root ::= "ab" | "cd""#, "root").unwrap();
        let pda = build_pda(&g, &PdaBuildOptions::default());
        assert!(accepts(&pda, b"ab"));
        assert!(accepts(&pda, b"cd"));
        assert!(!accepts(&pda, b"ac"));
        assert!(!accepts(&pda, b"abc"));
    }

    #[test]
    fn repetition_bounds_are_respected() {
        let g = parse_ebnf(r#"root ::= [0-9]{2,4}"#, "root").unwrap();
        let pda = build_pda(&g, &PdaBuildOptions::default());
        assert!(!accepts(&pda, b"1"));
        assert!(accepts(&pda, b"12"));
        assert!(accepts(&pda, b"123"));
        assert!(accepts(&pda, b"1234"));
        assert!(!accepts(&pda, b"12345"));
    }

    #[test]
    fn star_and_plus() {
        let g = parse_ebnf(r#"root ::= "a"* "b"+"#, "root").unwrap();
        let pda = build_pda(&g, &PdaBuildOptions::default());
        assert!(accepts(&pda, b"b"));
        assert!(accepts(&pda, b"aaabb"));
        assert!(!accepts(&pda, b"a"));
        assert!(!accepts(&pda, b""));
    }

    #[test]
    fn recursive_rule_matches_nested_structures() {
        let g = parse_ebnf(
            r#"
            root ::= array
            array ::= "[" (elem ("," elem)*)? "]"
            elem ::= array | [0-9]+
            "#,
            "root",
        )
        .unwrap();
        let pda = build_pda(&g, &PdaBuildOptions::default());
        assert!(accepts(&pda, b"[]"));
        assert!(accepts(&pda, b"[1,2,3]"));
        assert!(accepts(&pda, b"[[1],[2,[3]]]"));
        assert!(!accepts(&pda, b"[1,]"));
        assert!(!accepts(&pda, b"[[]"));
    }

    #[test]
    fn unicode_char_class_compiles_to_byte_level() {
        let g = parse_ebnf(r#"root ::= [^"\\]+"#, "root").unwrap();
        let pda = build_pda(&g, &PdaBuildOptions::default());
        assert!(accepts(&pda, "héllo🎉".as_bytes()));
        assert!(!accepts(&pda, b"he\"llo"));
        // A bare continuation byte is not valid UTF-8 and must be rejected.
        assert!(!accepts(&pda, &[0xBF]));
    }

    #[test]
    fn inlining_reduces_rule_count() {
        let g = parse_ebnf(
            r#"
            root ::= item ("," item)*
            item ::= digit digit
            digit ::= [0-9]
            "#,
            "root",
        )
        .unwrap();
        let with = build_pda(
            &g,
            &PdaBuildOptions {
                inline_rules: true,
                ..Default::default()
            },
        );
        let without = build_pda(
            &g,
            &PdaBuildOptions {
                inline_rules: false,
                ..Default::default()
            },
        );
        assert!(with.rules().len() < without.rules().len());
        // Language is unchanged.
        for input in [&b"12"[..], b"12,34,56", b"1", b"12,", b""] {
            assert_eq!(
                accepts(&with, input),
                accepts(&without, input),
                "inlining changed acceptance of {input:?}"
            );
        }
    }

    #[test]
    fn node_merging_preserves_language() {
        let g = xg_grammar::builtin::json_grammar();
        let merged = build_pda(
            &g,
            &PdaBuildOptions {
                merge_nodes: true,
                ..Default::default()
            },
        );
        let unmerged = build_pda(
            &g,
            &PdaBuildOptions {
                merge_nodes: false,
                ..Default::default()
            },
        );
        assert!(merged.node_count() <= unmerged.node_count());
        for input in [
            &br#"{"a": 1}"#[..],
            br#"[1, 2.5, "x", null, true]"#,
            br#"{"nested": {"k": [1, {"deep": false}]}}"#,
            br#"{"a": }"#,
            br#"[1,, 2]"#,
            br#""unterminated"#,
        ] {
            assert_eq!(
                accepts(&merged, input),
                accepts(&unmerged, input),
                "node merging changed acceptance of {:?}",
                String::from_utf8_lossy(input)
            );
        }
    }

    #[test]
    fn json_grammar_accepts_and_rejects() {
        let g = xg_grammar::builtin::json_grammar();
        let pda = build_pda_default(&g);
        assert!(accepts(
            &pda,
            br#"{"name": "Ada", "age": 36, "tags": ["x", "y"]}"#
        ));
        assert!(accepts(&pda, b"  [1, 2, 3]  "));
        assert!(accepts(&pda, br#""just a string""#));
        assert!(accepts(&pda, b"-12.5e+3"));
        assert!(!accepts(&pda, b"{unquoted: 1}"));
        assert!(!accepts(&pda, b"[1 2]"));
        assert!(!accepts(&pda, b"01"));
    }

    #[test]
    fn xml_grammar_accepts_and_rejects() {
        let g = xg_grammar::builtin::xml_grammar();
        let pda = build_pda_default(&g);
        assert!(accepts(&pda, b"<a><b x=\"1\">text</b></a>"));
        assert!(accepts(&pda, b"<note/>"));
        assert!(!accepts(&pda, b"<a>"));
        assert!(!accepts(&pda, b"text only"));
    }

    #[test]
    fn python_dsl_grammar_accepts_and_rejects() {
        let g = xg_grammar::builtin::python_dsl_grammar();
        let pda = build_pda_default(&g);
        assert!(accepts(&pda, b"x = 1"));
        assert!(accepts(&pda, b"if x > 1: y = f(x)\nz = \"s\""));
        assert!(accepts(&pda, b"for i in range(10): total = total + i"));
        assert!(accepts(&pda, b"while flag and not done: done = check(x)"));
        assert!(!accepts(&pda, b"if : pass"));
        assert!(!accepts(&pda, b"1 = x ="));
    }

    #[test]
    fn compact_removes_unreachable_rules() {
        let g = parse_ebnf(
            r#"
            root ::= "x"
            unused ::= "y" other
            other ::= "z"
            "#,
            "root",
        )
        .unwrap();
        let pda = build_pda(&g, &PdaBuildOptions::unoptimized());
        assert_eq!(pda.rules().len(), 1);
    }

    #[test]
    fn build_options_default_vs_unoptimized() {
        let opts = PdaBuildOptions::default();
        assert!(opts.inline_rules && opts.merge_nodes);
        let un = PdaBuildOptions::unoptimized();
        assert!(!un.inline_rules && !un.merge_nodes);
    }
}
