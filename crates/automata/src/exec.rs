//! A straightforward (non-persistent) executor for the byte-level PDA.
//!
//! This is the reference implementation used by tests, by the "naive PDA"
//! baseline (the *PDA Baseline* row of Table 3 and the llama.cpp-style
//! comparator of Figure 9), and as the semantic ground truth against which
//! the optimized matcher in `xg-core` is property-tested. Each matching stack
//! is stored as an owned `Vec<NodeId>`; branching copies the whole stack,
//! exactly the cost the persistent execution stack of §3.3 avoids.

use std::collections::HashSet;

use crate::pda::{NodeId, Pda, PdaEdge};

/// Upper bound on simultaneously tracked stacks; exceeding it indicates a
/// pathological grammar and aborts the match (treated as rejection).
const MAX_STACKS: usize = 4096;

/// A single matching stack: return nodes below, current node on top.
pub type MatchStack = Vec<NodeId>;

/// Result of advancing the matcher by one byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepResult {
    /// At least one stack survived; matching can continue.
    Alive,
    /// Every stack died; the input is not a prefix of any sentence.
    Dead,
}

/// A simple multi-stack PDA executor.
///
/// # Examples
///
/// ```
/// use xg_automata::{build_pda_default, SimpleMatcher};
///
/// let grammar = xg_grammar::builtin::json_grammar();
/// let pda = build_pda_default(&grammar);
/// let mut matcher = SimpleMatcher::new(&pda);
/// assert!(matcher.advance_bytes(br#"{"key": [1, 2"#));
/// assert!(!matcher.can_terminate());
/// assert!(matcher.advance_bytes(b"]}"));
/// assert!(matcher.can_terminate());
/// ```
#[derive(Debug, Clone)]
pub struct SimpleMatcher<'a> {
    pda: &'a Pda,
    stacks: Vec<MatchStack>,
}

impl<'a> SimpleMatcher<'a> {
    /// Creates a matcher positioned at the start of the root rule.
    pub fn new(pda: &'a Pda) -> Self {
        SimpleMatcher {
            pda,
            stacks: vec![vec![pda.root_start()]],
        }
    }

    /// Creates a matcher whose single stack contains only `node`, i.e. with
    /// an *unknown* parent context. This is how the adaptive token mask cache
    /// classifies context-independent tokens (§3.1).
    pub fn with_start_node(pda: &'a Pda, node: NodeId) -> Self {
        SimpleMatcher {
            pda,
            stacks: vec![vec![node]],
        }
    }

    /// Creates a matcher from previously captured stacks (see
    /// [`SimpleMatcher::stacks`]), allowing incremental sessions that own
    /// their state separately from the automaton.
    pub fn from_stacks(pda: &'a Pda, stacks: Vec<MatchStack>) -> Self {
        SimpleMatcher { pda, stacks }
    }

    /// Returns the current set of stacks.
    pub fn stacks(&self) -> &[MatchStack] {
        &self.stacks
    }

    /// Returns `true` if no stack is alive.
    pub fn is_dead(&self) -> bool {
        self.stacks.is_empty()
    }

    /// Advances over one byte.
    pub fn advance_byte(&mut self, byte: u8) -> StepResult {
        let mut next: Vec<MatchStack> = Vec::new();
        let mut seen: HashSet<MatchStack> = HashSet::new();
        for stack in &self.stacks {
            let closure = epsilon_closure(self.pda, stack);
            for config in &closure {
                let top = *config.last().expect("stacks are never empty");
                for edge in &self.pda.node(top).edges {
                    if let PdaEdge::Bytes { range, target } = edge {
                        if range.contains(byte) {
                            let mut new_stack = config.clone();
                            *new_stack.last_mut().expect("non-empty") = *target;
                            if seen.insert(new_stack.clone()) {
                                next.push(new_stack);
                            }
                        }
                    }
                }
            }
            if next.len() > MAX_STACKS {
                break;
            }
        }
        self.stacks = next;
        if self.stacks.is_empty() {
            StepResult::Dead
        } else {
            StepResult::Alive
        }
    }

    /// Advances over a byte string; returns `false` (and leaves the matcher
    /// dead) if some byte cannot be consumed.
    pub fn advance_bytes(&mut self, bytes: &[u8]) -> bool {
        for &b in bytes {
            if self.advance_byte(b) == StepResult::Dead {
                return false;
            }
        }
        true
    }

    /// Returns `true` if the input consumed so far is a complete sentence of
    /// the grammar (some stack can pop all the way out of the root rule).
    pub fn can_terminate(&self) -> bool {
        self.stacks.iter().any(|stack| {
            let closure = epsilon_closure(self.pda, stack);
            closure
                .iter()
                .any(|config| config.len() == 1 && self.pda.node(config[0]).is_final)
        })
    }

    /// Convenience: returns `true` if `input` is a complete sentence.
    pub fn accepts(mut self, input: &[u8]) -> bool {
        self.advance_bytes(input) && self.can_terminate()
    }

    /// Number of live stacks (a measure of grammar ambiguity at this point).
    pub fn stack_count(&self) -> usize {
        self.stacks.len()
    }
}

/// Computes every configuration reachable from `stack` without consuming a
/// byte: entering referenced rules (push) and returning from completed rules
/// (pop). The input configuration itself is included.
///
/// Termination is guaranteed for grammars that pass the left-recursion check;
/// a hard cap guards against pathological inputs.
pub fn epsilon_closure(pda: &Pda, stack: &[NodeId]) -> Vec<MatchStack> {
    let mut out: Vec<MatchStack> = Vec::new();
    let mut seen: HashSet<MatchStack> = HashSet::new();
    let mut queue: Vec<MatchStack> = vec![stack.to_vec()];
    seen.insert(stack.to_vec());
    while let Some(config) = queue.pop() {
        if out.len() > MAX_STACKS {
            break;
        }
        let top = *config.last().expect("stacks are never empty");
        let node = pda.node(top);
        // Expand rule references (push).
        for edge in &node.edges {
            if let PdaEdge::Rule { rule, target } = edge {
                let mut new_stack = config.clone();
                *new_stack.last_mut().expect("non-empty") = *target;
                new_stack.push(pda.rule(*rule).start);
                if seen.insert(new_stack.clone()) {
                    queue.push(new_stack);
                }
            }
        }
        // Return to the parent rule (pop).
        if node.is_final && config.len() > 1 {
            let mut new_stack = config.clone();
            new_stack.pop();
            if seen.insert(new_stack.clone()) {
                queue.push(new_stack);
            }
        }
        out.push(config);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build_pda, build_pda_default, PdaBuildOptions};
    use xg_grammar::parse_ebnf;

    #[test]
    fn with_start_node_matches_within_a_rule() {
        let g = parse_ebnf(
            r#"
            root ::= "[" str "]"
            str ::= "\"" [a-z]* "\""
            "#,
            "root",
        )
        .unwrap();
        // Disable inlining so the `str` rule survives as a separate automaton.
        let pda = build_pda(
            &g,
            &PdaBuildOptions {
                inline_rules: false,
                ..Default::default()
            },
        );
        // Starting from the str rule's start node, `"abc"` is fully matched
        // within the rule.
        let str_rule = pda
            .rules()
            .iter()
            .position(|r| r.name == "str")
            .expect("str rule exists");
        let start = pda.rules()[str_rule].start;
        let mut m = SimpleMatcher::with_start_node(&pda, start);
        assert!(m.advance_bytes(b"\"abc\""));
        // ... but `"]` needs the parent context and dies with an unknown
        // parent (the matcher cannot pop past the artificial stack bottom).
        let mut m2 = SimpleMatcher::with_start_node(&pda, start);
        assert!(!m2.advance_bytes(b"\"abc\"]"));
    }

    #[test]
    fn ambiguity_creates_parallel_stacks() {
        // Two expansions match the same prefix.
        let g = parse_ebnf(
            r#"
            root ::= a | b
            a ::= "xx" "a"
            b ::= "x" "xb"
            "#,
            "root",
        )
        .unwrap();
        let pda = build_pda(&g, &PdaBuildOptions::unoptimized());
        let mut m = SimpleMatcher::new(&pda);
        assert!(m.advance_bytes(b"x"));
        assert!(m.stack_count() >= 2);
        assert!(m.advance_bytes(b"xa"));
        assert!(m.can_terminate());
    }

    #[test]
    fn termination_requires_complete_sentence() {
        let g = xg_grammar::builtin::json_grammar();
        let pda = build_pda_default(&g);
        let mut m = SimpleMatcher::new(&pda);
        assert!(m.advance_bytes(br#"{"a": [1, 2]"#));
        assert!(!m.can_terminate());
        assert!(m.advance_bytes(b"}"));
        assert!(m.can_terminate());
        // Trailing whitespace keeps it terminable.
        assert!(m.advance_bytes(b" \n"));
        assert!(m.can_terminate());
    }

    #[test]
    fn dead_matcher_stays_dead() {
        let g = xg_grammar::builtin::json_grammar();
        let pda = build_pda_default(&g);
        let mut m = SimpleMatcher::new(&pda);
        assert!(!m.advance_bytes(b"nope"));
        assert!(m.is_dead());
        assert_eq!(m.advance_byte(b'x'), StepResult::Dead);
        assert!(!m.can_terminate());
    }

    #[test]
    fn epsilon_closure_includes_push_and_pop() {
        let g = parse_ebnf(
            r#"
            root ::= inner "!"
            inner ::= "a"?
            "#,
            "root",
        )
        .unwrap();
        let pda = build_pda(&g, &PdaBuildOptions::unoptimized());
        let closure = epsilon_closure(&pda, &[pda.root_start()]);
        // The closure contains the root start itself, the entered `inner`
        // rule, and (because `inner` is nullable) the popped-back return
        // position.
        assert!(closure.len() >= 3);
    }
}
