//! Pathological grammar corpus for the static-analysis lint pass.
//!
//! Each [`PathologicalCase`] is a grammar that *builds* successfully but
//! carries exactly the defect its `expected_code` names — the `grammar_lint`
//! experiment asserts that [`xg_grammar::analyze`] flags every one of them
//! with that code (and conversely that the whole [`schema_corpus`] lints
//! clean of errors). [`builder_rejections`] covers the degenerate shapes the
//! [`GrammarBuilder`](xg_grammar::GrammarBuilder) refuses to construct at
//! all, so they can never reach the analyzer.
//!
//! Vocabulary-dependent defects (`dead-state`, `dead-trigger`) are not
//! corpus entries: they only exist relative to a concrete tokenizer, so the
//! experiment demonstrates them with purpose-built restricted vocabularies
//! instead.
//!
//! [`schema_corpus`]: crate::schema_corpus

use xg_grammar::{Grammar, GrammarBuilder, GrammarError, GrammarExpr};

/// One pathological grammar plus the diagnostic code the analyzer must
/// report for it (kebab-case, as rendered by
/// `xg_grammar::DiagnosticCode::as_str`).
#[derive(Debug, Clone)]
pub struct PathologicalCase {
    /// Short stable identifier for reporting.
    pub name: &'static str,
    /// The diagnostic code [`xg_grammar::analyze`] must emit.
    pub expected_code: &'static str,
    /// `true` if the expected diagnostic is an error (the grammar must be
    /// rejected under `LintMode::Strict`), `false` for warnings.
    pub expected_error: bool,
    /// The defective grammar.
    pub grammar: Grammar,
}

/// Builds the pathological corpus: one case per grammar-level diagnostic
/// code the analyzer can emit on a buildable grammar.
///
/// # Examples
///
/// ```
/// let corpus = xg_datasets::pathological_corpus();
/// assert!(corpus.len() >= 5);
/// for case in &corpus {
///     let analysis = xg_grammar::analyze(&case.grammar);
///     assert!(
///         analysis.diagnostics.iter().any(|d| d.code.as_str() == case.expected_code),
///         "{} missing {}",
///         case.name,
///         case.expected_code,
///     );
/// }
/// ```
pub fn pathological_corpus() -> Vec<PathologicalCase> {
    vec![
        PathologicalCase {
            name: "orphan-rule",
            expected_code: "unreachable-rule",
            expected_error: false,
            grammar: xg_grammar::parse_ebnf(
                r#"
                root ::= "a"
                orphan ::= "b"
                "#,
                "root",
            )
            .expect("orphan-rule grammar builds"),
        },
        PathologicalCase {
            name: "dead-alternative",
            expected_code: "unproductive-rule",
            expected_error: false,
            // `loop` can never derive a finite string, but `root` still can
            // through its first alternative, so this is only a warning.
            grammar: xg_grammar::parse_ebnf(
                r#"
                root ::= "ok" | loop
                loop ::= "x" loop
                "#,
                "root",
            )
            .expect("dead-alternative grammar builds"),
        },
        PathologicalCase {
            name: "infinite-root",
            expected_code: "unsatisfiable-grammar",
            expected_error: true,
            // Every derivation of `root` recurses forever: the language is
            // empty and no decode lane could ever finish.
            grammar: xg_grammar::parse_ebnf(r#"root ::= "x" root"#, "root")
                .expect("infinite-root grammar builds"),
        },
        PathologicalCase {
            name: "mutual-recursion-no-base-case",
            expected_code: "unsatisfiable-grammar",
            expected_error: true,
            grammar: xg_grammar::parse_ebnf(
                r#"
                root ::= "(" a ")"
                a ::= "x" b
                b ::= "y" a
                "#,
                "root",
            )
            .expect("mutual-recursion grammar builds"),
        },
        PathologicalCase {
            name: "empty-char-class-arm",
            expected_code: "empty-class",
            expected_error: false,
            // A choice arm requiring a character from the empty class. The
            // builder accepts it (only `validate()` and the lint see it);
            // the arm itself can never match.
            grammar: empty_class_grammar(),
        },
        PathologicalCase {
            name: "unbounded-nullable-repetition",
            expected_code: "nullable-repetition",
            expected_error: true,
            // `("a"?)*` can loop on the empty string without consuming
            // input, so the pushdown automaton has an infinite-nullable
            // cycle.
            grammar: xg_grammar::parse_ebnf(r#"root ::= ("a"?)*"#, "root")
                .expect("nullable-repetition grammar builds"),
        },
    ]
}

/// A grammar whose root chooses between a literal and a character drawn
/// from an *empty* class — constructed through the builder because EBNF
/// syntax cannot write an empty class.
fn empty_class_grammar() -> Grammar {
    let mut builder = GrammarBuilder::new();
    let root = builder.declare("root");
    builder.set_body(
        root,
        GrammarExpr::choice(vec![
            GrammarExpr::literal("ok"),
            GrammarExpr::CharClass(xg_grammar::CharClass::new(vec![])),
        ]),
    );
    builder.build("root").expect("empty-class grammar builds")
}

/// One degenerate grammar shape the builder itself rejects, together with
/// the error it produced — these defects can never reach the analyzer.
#[derive(Debug)]
pub struct BuilderRejection {
    /// Short stable identifier for reporting.
    pub name: &'static str,
    /// The build-time error the degenerate shape produced.
    pub error: GrammarError,
}

/// Constructs the degenerate shapes [`GrammarBuilder::build`] refuses
/// (inverted repetition bounds, a choice with zero alternatives) and
/// returns the rejections it produced.
///
/// # Examples
///
/// ```
/// let rejections = xg_datasets::builder_rejections();
/// assert_eq!(rejections.len(), 2);
/// ```
pub fn builder_rejections() -> Vec<BuilderRejection> {
    let mut out = Vec::new();

    let mut builder = GrammarBuilder::new();
    let root = builder.declare("root");
    builder.set_body(
        root,
        GrammarExpr::Repeat {
            expr: Box::new(GrammarExpr::literal("a")),
            min: 3,
            max: Some(1),
        },
    );
    out.push(BuilderRejection {
        name: "inverted-repetition-bounds",
        error: builder
            .build("root")
            .expect_err("min > max must fail to build"),
    });

    let mut builder = GrammarBuilder::new();
    let root = builder.declare("root");
    builder.set_body(root, GrammarExpr::Choice(vec![]));
    out.push(BuilderRejection {
        name: "zero-alternative-choice",
        error: builder
            .build("root")
            .expect_err("empty choice must fail to build"),
    });

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use xg_grammar::{analyze, Severity};

    #[test]
    fn every_case_is_flagged_with_its_expected_code() {
        for case in pathological_corpus() {
            let analysis = analyze(&case.grammar);
            let hit = analysis
                .diagnostics
                .iter()
                .find(|d| d.code.as_str() == case.expected_code)
                .unwrap_or_else(|| {
                    panic!(
                        "case `{}` missing expected code `{}`; got {:?}",
                        case.name, case.expected_code, analysis.diagnostics
                    )
                });
            assert_eq!(
                hit.severity == Severity::Error,
                case.expected_error,
                "case `{}` severity mismatch",
                case.name
            );
            assert_eq!(
                analysis.has_errors(),
                case.expected_error,
                "case `{}` overall error state mismatch",
                case.name
            );
        }
    }

    #[test]
    fn case_names_are_unique() {
        let corpus = pathological_corpus();
        let mut names: Vec<_> = corpus.iter().map(|c| c.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), corpus.len());
    }

    #[test]
    fn builder_rejections_carry_the_expected_errors() {
        let rejections = builder_rejections();
        assert!(rejections
            .iter()
            .any(|r| matches!(r.error, GrammarError::InvalidRepetition { .. })));
        assert!(rejections
            .iter()
            .any(|r| matches!(r.error, GrammarError::EmptyChoice { .. })));
    }
}
