//! Agentic tool-calling tasks: free prose interleaved with tagged,
//! schema-constrained tool calls.
//!
//! This is the structural-tag workload (XGrammar structural tags /
//! XGrammar-2 dynamic tag dispatch): the model chats in free text and, when
//! it decides to call a tool, emits `<function=NAME>{json args}</function>`.
//! Only the tagged segment is grammar-constrained; the surrounding prose is
//! not. Each task carries the [`StructuralTag`] describing the registered
//! functions (one shared `"<function="` trigger dispatching over all of
//! them) plus a reference transcript mixing prose and one or two calls.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde_json::Value;
use xg_grammar::{StructuralTag, TagContent, TagSpec};

use crate::json_tasks::json_mode_eval_like;

/// The trigger string shared by every tool-call tag.
pub const TOOL_CALL_TRIGGER: &str = "<function=";

/// The end string closing every tool-call tag.
pub const TOOL_CALL_END: &str = "</function>";

/// A callable function registered with the model.
#[derive(Debug, Clone, PartialEq)]
pub struct ToolFunction {
    /// Function name (appears in the begin tag `<function=NAME>`).
    pub name: String,
    /// JSON Schema of the argument object.
    pub schema: Value,
}

impl ToolFunction {
    /// The begin tag opening a call to this function.
    pub fn begin_tag(&self) -> String {
        format!("{TOOL_CALL_TRIGGER}{}>", self.name)
    }
}

/// One tool-calling task: the registered functions, the natural-language
/// prompt, and a reference transcript interleaving prose with tagged calls.
#[derive(Debug, Clone, PartialEq)]
pub struct ToolCallTask {
    /// The functions the model may call.
    pub functions: Vec<ToolFunction>,
    /// Natural-language instruction.
    pub prompt: String,
    /// Reference transcript: prose, one or two `<function=…>…</function>`
    /// segments, prose.
    pub reference: Vec<u8>,
}

impl ToolCallTask {
    /// Builds the [`StructuralTag`] for this task's function registry: one
    /// tag per function (begin `<function=NAME>`, content = the argument
    /// schema, end `</function>`) dispatched by the shared
    /// [`TOOL_CALL_TRIGGER`].
    pub fn structural_tag(&self) -> StructuralTag {
        StructuralTag::with_triggers(
            self.functions
                .iter()
                .map(|f| TagSpec {
                    begin: f.begin_tag(),
                    content: TagContent::JsonSchema(f.schema.clone()),
                    end: TOOL_CALL_END.to_string(),
                })
                .collect(),
            vec![TOOL_CALL_TRIGGER.to_string()],
        )
    }
}

const PREAMBLES: &[&str] = &[
    "Sure, let me look that up for you. ",
    "I can help with that — calling the tool now. ",
    "One moment while I fetch the data. ",
    "Good question! I will query the service. ",
];

const POSTAMBLES: &[&str] = &[
    " The call has been issued; I will summarize the result next.",
    " Done — let me know if you need a follow-up query.",
    " That should cover the request.",
    " I will report back once the tool responds.",
];

/// Generates `count` deterministic tool-calling tasks. Every task registers
/// the same small function catalog (drawn from the json-mode-eval-like
/// families), so sub-grammar compilations are shared across the batch like a
/// real agent serving one tool registry; references differ per task and may
/// contain one or two calls.
pub fn tool_call_tasks(count: usize, seed: u64) -> Vec<ToolCallTask> {
    let mut rng = SmallRng::seed_from_u64(seed);
    // A stable catalog: one function per schema family.
    let catalog: Vec<ToolFunction> = json_mode_eval_like(5, seed ^ 0x700C)
        .into_iter()
        .map(|t| ToolFunction {
            name: t.function_name,
            schema: t.schema,
        })
        .collect();
    // Fresh argument objects per task (same families, new values).
    let arguments = json_mode_eval_like(count.max(1) * 2, seed);
    (0..count)
        .map(|i| {
            let first = &arguments[2 * i];
            let two_calls = rng.gen_bool(0.3);
            let mut reference = Vec::new();
            reference.extend_from_slice(PREAMBLES[rng.gen_range(0..PREAMBLES.len())].as_bytes());
            push_call(&mut reference, &first.function_name, &first.reference);
            if two_calls {
                let second = &arguments[2 * i + 1];
                reference.extend_from_slice(b" And a second lookup: ");
                push_call(&mut reference, &second.function_name, &second.reference);
            }
            reference.extend_from_slice(POSTAMBLES[rng.gen_range(0..POSTAMBLES.len())].as_bytes());
            ToolCallTask {
                functions: catalog.clone(),
                prompt: format!(
                    "You may call the registered tools by writing \
                     <function=NAME>{{json arguments}}</function> inline in your \
                     answer. {}",
                    first.prompt
                ),
                reference,
            }
        })
        .collect()
}

fn push_call(out: &mut Vec<u8>, name: &str, args: &[u8]) {
    out.extend_from_slice(format!("{TOOL_CALL_TRIGGER}{name}>").as_bytes());
    out.extend_from_slice(args);
    out.extend_from_slice(TOOL_CALL_END.as_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tasks_are_deterministic_per_seed() {
        assert_eq!(tool_call_tasks(6, 3), tool_call_tasks(6, 3));
        assert_ne!(tool_call_tasks(6, 3), tool_call_tasks(6, 4));
    }

    #[test]
    fn references_interleave_prose_and_tagged_calls() {
        for task in tool_call_tasks(8, 11) {
            let text = String::from_utf8(task.reference.clone()).unwrap();
            let opens = text.matches(TOOL_CALL_TRIGGER).count();
            let closes = text.matches(TOOL_CALL_END).count();
            assert!(opens >= 1 && opens == closes, "unbalanced tags in {text}");
            assert!(
                !text.starts_with(TOOL_CALL_TRIGGER),
                "prose precedes the call"
            );
            // Every tagged payload is valid JSON.
            for segment in text.split(TOOL_CALL_TRIGGER).skip(1) {
                let payload = segment
                    .split_once('>')
                    .and_then(|(_, rest)| rest.split(TOOL_CALL_END).next())
                    .expect("well-formed tag");
                assert!(serde_json::from_str::<Value>(payload).is_ok());
            }
        }
    }

    #[test]
    fn structural_tag_validates_and_covers_called_functions() {
        for task in tool_call_tasks(5, 7) {
            let tag = task.structural_tag();
            tag.validate().expect("task tags validate");
            assert_eq!(tag.tags.len(), task.functions.len());
            // Every call in the reference uses a registered begin tag.
            let text = String::from_utf8(task.reference.clone()).unwrap();
            for segment in text.split(TOOL_CALL_TRIGGER).skip(1) {
                let name = segment.split_once('>').unwrap().0;
                assert!(
                    task.functions.iter().any(|f| f.name == name),
                    "unregistered function {name}"
                );
            }
        }
    }
}
