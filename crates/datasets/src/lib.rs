//! Synthetic workload generators for the XGrammar reproduction.
//!
//! The paper evaluates on the `NousResearch/json-mode-eval` dataset (JSON
//! Schema / function calling), plus synthetic XML and Python-DSL corpora.
//! None of those can be bundled here, so this crate generates deterministic
//! equivalents with matching size statistics (≈139 prompt tokens and ≈53
//! output tokens per request — paper §4.2):
//!
//! * [`json_mode_eval_like`] — function-calling tasks: a JSON Schema, a
//!   prompt, and a reference answer that satisfies the schema,
//! * [`tool_call_tasks`] — agentic tool-calling transcripts: free prose
//!   interleaved with `<function=NAME>{json}</function>` segments plus the
//!   structural-tag description of the function registry,
//! * [`agent_sessions`] — multi-turn agent sessions whose tool catalogs
//!   mutate between turns ([`DispatchDelta`](xg_grammar::DispatchDelta)
//!   adds/removes), the dynamic-registry workload,
//! * [`xml_tasks`] — XML code-generation tasks for the CFG (XML) workload,
//! * [`python_dsl_tasks`] — Python-DSL generation tasks,
//! * [`json_documents`] — free-form JSON documents for the CFG (JSON)
//!   workload,
//! * [`schema_corpus`] — a JSON-Schema conformance corpus grouped by
//!   converter feature (pattern, format, bounds, `allOf`, `$ref`, ...) with
//!   known-valid and known-invalid instances,
//! * [`pathological_corpus`] — defective grammars with known lint verdicts,
//!   ground truth for the `grammar_lint` experiment and the static-analysis
//!   pass,
//! * [`training_corpus`] — mixed text used to train the BPE tokenizer
//!   substitute.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod agent_sessions;
mod corpus;
mod json_tasks;
mod pathological_corpus;
mod python_tasks;
mod schema_corpus;
mod tool_call_tasks;
mod xml_tasks_mod;

pub use agent_sessions::{
    agent_catalog, agent_sessions, agent_tag_spec, agent_tool, overlapping_catalogs, AgentSession,
    AgentTurn,
};
pub use corpus::training_corpus;
pub use json_tasks::{json_documents, json_mode_eval_like, FunctionCallTask};
pub use pathological_corpus::{
    builder_rejections, pathological_corpus, BuilderRejection, PathologicalCase,
};
pub use python_tasks::python_dsl_tasks;
pub use schema_corpus::{schema_corpus, SchemaCase, SCHEMA_FEATURES};
pub use tool_call_tasks::{
    tool_call_tasks, ToolCallTask, ToolFunction, TOOL_CALL_END, TOOL_CALL_TRIGGER,
};
pub use xml_tasks_mod::xml_tasks;

/// A generic generation task: a natural-language prompt plus the reference
/// structured answer the simulated LLM will try to produce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenerationTask {
    /// Natural-language instruction shown to the (simulated) model.
    pub prompt: String,
    /// Reference structured output (bytes of the target document).
    pub reference: Vec<u8>,
}

impl GenerationTask {
    /// Creates a task.
    pub fn new(prompt: impl Into<String>, reference: impl Into<Vec<u8>>) -> Self {
        GenerationTask {
            prompt: prompt.into(),
            reference: reference.into(),
        }
    }
}
