//! Seeded JSON-Schema conformance corpus.
//!
//! Generates schemas grouped into feature classes — one per converter
//! feature (pattern, format, numeric bounds, `multipleOf`, `allOf`, `$ref`,
//! ...) — together with serialized instances that must be accepted
//! (`valid`) and instances that must be rejected (`invalid`) by the grammar
//! compiled from the schema. The `schema_corpus` experiment and the
//! conformance test suite drive every instance token-by-token through the
//! matcher, so the corpus is the ground truth tying the JSON-Schema
//! converter to the paper's "real-world schema" claim.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde_json::{json, Value};

/// One corpus entry: a schema, the feature class that produced it, and
/// serialized instances with known verdicts.
#[derive(Debug, Clone, PartialEq)]
pub struct SchemaCase {
    /// Feature class this schema exercises (one of [`SCHEMA_FEATURES`]).
    pub feature: &'static str,
    /// The JSON Schema document.
    pub schema: Value,
    /// Serialized JSON instances the schema's grammar must accept.
    pub valid: Vec<String>,
    /// Serialized JSON instances the schema's grammar must reject.
    pub invalid: Vec<String>,
}

/// The feature classes covered by [`schema_corpus`], in generation order.
pub const SCHEMA_FEATURES: &[&str] = &[
    "pattern",
    "format",
    "string-length",
    "integer-bounds",
    "exclusive-bounds",
    "number-bounds",
    "multiple-of",
    "enum-const",
    "object-required",
    "array-bounds",
    "all-of",
    "ref-recursive",
];

/// Generates a deterministic corpus of `count` schema cases, round-robin
/// over [`SCHEMA_FEATURES`].
///
/// # Examples
///
/// ```
/// let corpus = xg_datasets::schema_corpus(24, 42);
/// assert_eq!(corpus.len(), 24);
/// assert!(corpus.iter().all(|c| !c.valid.is_empty() && !c.invalid.is_empty()));
/// ```
pub fn schema_corpus(count: usize, seed: u64) -> Vec<SchemaCase> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..count)
        .map(|i| {
            let feature = SCHEMA_FEATURES[i % SCHEMA_FEATURES.len()];
            case_for(feature, &mut rng)
        })
        .collect()
}

fn case_for(feature: &'static str, rng: &mut SmallRng) -> SchemaCase {
    match feature {
        "pattern" => pattern_case(rng),
        "format" => format_case(rng),
        "string-length" => string_length_case(rng),
        "integer-bounds" => integer_bounds_case(rng),
        "exclusive-bounds" => exclusive_bounds_case(rng),
        "number-bounds" => number_bounds_case(rng),
        "multiple-of" => multiple_of_case(rng),
        "enum-const" => enum_const_case(rng),
        "object-required" => object_required_case(rng),
        "array-bounds" => array_bounds_case(rng),
        "all-of" => all_of_case(rng),
        "ref-recursive" => ref_recursive_case(rng),
        other => unreachable!("unknown feature class {other}"),
    }
}

fn lower_word(rng: &mut SmallRng, len: usize) -> String {
    (0..len)
        .map(|_| (b'a' + rng.gen_range(0..26u8)) as char)
        .collect()
}

fn quoted(s: &str) -> String {
    serde_json::to_string(&Value::String(s.to_string())).expect("serializable")
}

fn pattern_case(rng: &mut SmallRng) -> SchemaCase {
    let (pattern, valid, invalid) = match rng.gen_range(0..3u32) {
        0 => {
            let min = rng.gen_range(2..=4usize);
            let max = min + rng.gen_range(1..=4usize);
            (
                format!("^[a-z]{{{min},{max}}}$"),
                vec![lower_word(rng, min), lower_word(rng, max)],
                vec![lower_word(rng, min - 1), "1".repeat(min)],
            )
        }
        1 => {
            let digits = rng.gen_range(100..=999u32);
            (
                "^[A-Z]{2}-[0-9]{3}$".to_string(),
                vec![format!("QK-{digits}"), format!("AB-{digits}")],
                vec![format!("qk-{digits}"), format!("QK-{digits}9")],
            )
        }
        _ => {
            let n = rng.gen_range(1..=999u32);
            (
                "^(alpha|beta|gamma)-[0-9]+$".to_string(),
                vec![format!("beta-{n}"), format!("gamma-{n}")],
                vec![format!("delta-{n}"), "beta-".to_string()],
            )
        }
    };
    SchemaCase {
        feature: "pattern",
        schema: json!({"type": "string", "pattern": pattern}),
        valid: valid.iter().map(|s| quoted(s)).collect(),
        invalid: invalid.iter().map(|s| quoted(s)).collect(),
    }
}

fn format_case(rng: &mut SmallRng) -> SchemaCase {
    let (format, valid, invalid): (&str, Vec<String>, Vec<String>) = match rng.gen_range(0..8u32) {
        0 => {
            let (y, m, d) = (
                rng.gen_range(1990..=2030u32),
                rng.gen_range(1..=12u32),
                rng.gen_range(1..=28u32),
            );
            (
                "date",
                vec![format!("{y}-{m:02}-{d:02}")],
                vec![format!("{y}-13-{d:02}"), format!("{y}-{m:02}-32")],
            )
        }
        1 => {
            let (h, mi, s) = (
                rng.gen_range(0..=23u32),
                rng.gen_range(0..=59u32),
                rng.gen_range(0..=59u32),
            );
            (
                "time",
                vec![
                    format!("{h:02}:{mi:02}:{s:02}Z"),
                    format!("{h:02}:{mi:02}:{s:02}+01:30"),
                ],
                vec![
                    format!("25:{mi:02}:{s:02}Z"),
                    format!("{h:02}:{mi:02}:{s:02}"),
                ],
            )
        }
        2 => {
            let (y, m, d, h) = (
                rng.gen_range(2000..=2029u32),
                rng.gen_range(1..=12u32),
                rng.gen_range(1..=28u32),
                rng.gen_range(0..=23u32),
            );
            (
                "date-time",
                vec![format!("{y}-{m:02}-{d:02}T{h:02}:30:00Z")],
                vec![format!("{y}-{m:02}-{d:02} {h:02}:30:00Z")],
            )
        }
        3 => {
            let hex: String = (0..32)
                .map(|_| char::from_digit(rng.gen_range(0..16u32), 16).expect("hex digit"))
                .collect();
            let uuid = format!(
                "{}-{}-{}-{}-{}",
                &hex[0..8],
                &hex[8..12],
                &hex[12..16],
                &hex[16..20],
                &hex[20..32]
            );
            let broken = format!("g{}", &uuid[1..]);
            ("uuid", vec![uuid.clone()], vec![broken, hex])
        }
        4 => {
            let user_len = rng.gen_range(3..=8usize);
            let user = lower_word(rng, user_len);
            (
                "email",
                vec![format!("{user}@example.com"), format!("{user}.x@mail.org")],
                vec![format!("{user}example.com"), format!("{user}@nodot")],
            )
        }
        5 => {
            let (a, b, c, d) = (
                rng.gen_range(0..=255u32),
                rng.gen_range(0..=255u32),
                rng.gen_range(0..=255u32),
                rng.gen_range(0..=255u32),
            );
            (
                "ipv4",
                vec![format!("{a}.{b}.{c}.{d}")],
                vec![format!("{a}.{b}.{c}.300"), format!("{a}.{b}.{c}")],
            )
        }
        6 => {
            let groups: Vec<String> = (0..8)
                .map(|_| format!("{:x}", rng.gen_range(0..=0xffffu32)))
                .collect();
            let addr = groups.join(":");
            let broken = format!("{}:zzzz", groups[..7].join(":"));
            ("ipv6", vec![addr], vec![broken])
        }
        _ => {
            let host_len = rng.gen_range(3..=10usize);
            let host = lower_word(rng, host_len);
            (
                "hostname",
                vec![format!("{host}.example.com"), host.clone()],
                vec![format!("-{host}.example.com"), format!("{host}_bad.com")],
            )
        }
    };
    SchemaCase {
        feature: "format",
        schema: json!({"type": "string", "format": format}),
        valid: valid.iter().map(|s| quoted(s)).collect(),
        invalid: invalid.iter().map(|s| quoted(s)).collect(),
    }
}

fn string_length_case(rng: &mut SmallRng) -> SchemaCase {
    let min = rng.gen_range(1..=4usize);
    let max = min + rng.gen_range(1..=6usize);
    SchemaCase {
        feature: "string-length",
        schema: json!({"type": "string", "minLength": min, "maxLength": max}),
        valid: vec![quoted(&lower_word(rng, min)), quoted(&lower_word(rng, max))],
        invalid: vec![
            quoted(&lower_word(rng, min - 1)),
            quoted(&lower_word(rng, max + 1)),
        ],
    }
}

fn integer_bounds_case(rng: &mut SmallRng) -> SchemaCase {
    let lo = rng.gen_range(-500..=500i64);
    let hi = lo + rng.gen_range(1..=400i64);
    let inside = rng.gen_range(lo..=hi);
    SchemaCase {
        feature: "integer-bounds",
        schema: json!({"type": "integer", "minimum": lo, "maximum": hi}),
        valid: vec![lo.to_string(), hi.to_string(), inside.to_string()],
        invalid: vec![
            (lo - 1 - rng.gen_range(0..=5i64)).to_string(),
            (hi + 1 + rng.gen_range(0..=5i64)).to_string(),
        ],
    }
}

fn exclusive_bounds_case(rng: &mut SmallRng) -> SchemaCase {
    let lo = rng.gen_range(-200..=200i64);
    let hi = lo + rng.gen_range(2..=300i64);
    SchemaCase {
        feature: "exclusive-bounds",
        schema: json!({"type": "integer", "exclusiveMinimum": lo, "exclusiveMaximum": hi}),
        valid: vec![(lo + 1).to_string(), (hi - 1).to_string()],
        invalid: vec![lo.to_string(), hi.to_string()],
    }
}

fn number_bounds_case(rng: &mut SmallRng) -> SchemaCase {
    let lo = rng.gen_range(-100..=100i64);
    let hi = lo + rng.gen_range(2..=200i64);
    let v = rng.gen_range(lo..hi);
    // `v.5` lies in (v, v+1) for v >= 0; for negative v use a zero fraction,
    // whose value is exactly v and therefore inside [lo, hi].
    let fractional = if v >= 0 {
        format!("{v}.5")
    } else {
        format!("{v}.0")
    };
    // A fractional instance outside the range: `hi.5` exceeds `hi` when
    // `hi >= 0`; for a negative `hi` the decimal digits *lower* the value,
    // so overshoot below the range with `lo.5` instead.
    let out_of_range_fraction = if hi >= 0 {
        format!("{hi}.5")
    } else {
        format!("{lo}.5")
    };
    SchemaCase {
        feature: "number-bounds",
        schema: json!({"type": "number", "minimum": lo, "maximum": hi}),
        valid: vec![lo.to_string(), hi.to_string(), fractional],
        invalid: vec![
            (lo - 1).to_string(),
            (hi + 1).to_string(),
            out_of_range_fraction,
        ],
    }
}

fn multiple_of_case(rng: &mut SmallRng) -> SchemaCase {
    let k = rng.gen_range(2..=12i64);
    let q = rng.gen_range(-40..=40i64);
    let base = rng.gen_range(1..=40i64);
    let r = rng.gen_range(1..k);
    SchemaCase {
        feature: "multiple-of",
        schema: json!({"type": "integer", "multipleOf": k}),
        valid: vec![(k * q).to_string(), "0".to_string()],
        invalid: vec![(k * base + r).to_string(), format!("0{k}")],
    }
}

fn enum_const_case(rng: &mut SmallRng) -> SchemaCase {
    if rng.gen_bool(0.5) {
        let members: Vec<String> = (0..rng.gen_range(3..=5usize))
            .map(|_| {
                let len = rng.gen_range(3..=7usize);
                lower_word(rng, len)
            })
            .collect();
        let pick = members[rng.gen_range(0..members.len())].clone();
        SchemaCase {
            feature: "enum-const",
            schema: json!({"enum": members}),
            valid: vec![quoted(&pick)],
            invalid: vec![quoted("zzz_not_a_member"), "7".to_string()],
        }
    } else {
        let n = rng.gen_range(-99..=99i64);
        SchemaCase {
            feature: "enum-const",
            schema: json!({"const": n}),
            valid: vec![n.to_string()],
            invalid: vec![(n + 1).to_string(), quoted("x")],
        }
    }
}

fn object_required_case(rng: &mut SmallRng) -> SchemaCase {
    let n_props = rng.gen_range(2..=4usize);
    let names: Vec<String> = (0..n_props)
        .map(|i| format!("{}_{i}", lower_word(rng, 4)))
        .collect();
    let mut properties = serde_json::Map::new();
    let mut full = serde_json::Map::new();
    let mut required_only = serde_json::Map::new();
    let mut required: Vec<String> = Vec::new();
    for (i, name) in names.iter().enumerate() {
        let (prop_schema, value) = match rng.gen_range(0..3u32) {
            0 => (json!({"type": "string"}), json!(lower_word(rng, 5))),
            1 => (json!({"type": "integer"}), json!(rng.gen_range(0..1000i64))),
            _ => (json!({"type": "boolean"}), json!(rng.gen_bool(0.5))),
        };
        let is_required = i == 0 || rng.gen_bool(0.5);
        properties.insert(name.clone(), prop_schema);
        full.insert(name.clone(), value.clone());
        if is_required {
            required.push(name.clone());
            required_only.insert(name.clone(), value);
        }
    }
    let serialize = |m: &serde_json::Map<String, Value>| {
        serde_json::to_string(&Value::Object(m.clone())).expect("serializable")
    };
    let mut with_extra = full.clone();
    with_extra.insert("unexpected_key".to_string(), json!(1));
    let mut missing = full.clone();
    missing.remove(&required[0]);
    SchemaCase {
        feature: "object-required",
        schema: json!({"type": "object", "properties": properties, "required": required}),
        valid: vec![serialize(&full), serialize(&required_only)],
        invalid: vec![serialize(&with_extra), serialize(&missing)],
    }
}

fn array_bounds_case(rng: &mut SmallRng) -> SchemaCase {
    let min = rng.gen_range(1..=3usize);
    let max = min + rng.gen_range(0..=3usize);
    let make = |n: usize, rng: &mut SmallRng| {
        let items: Vec<Value> = (0..n).map(|_| json!(rng.gen_range(0..100i64))).collect();
        serde_json::to_string(&Value::Array(items)).expect("serializable")
    };
    let valid = vec![make(min, rng), make(max, rng)];
    let invalid = vec![make(min - 1, rng), make(max + 1, rng)];
    SchemaCase {
        feature: "array-bounds",
        schema: json!({
            "type": "array",
            "items": {"type": "integer"},
            "minItems": min,
            "maxItems": max
        }),
        valid,
        invalid,
    }
}

fn all_of_case(rng: &mut SmallRng) -> SchemaCase {
    let a_key = format!("{}_a", lower_word(rng, 4));
    let b_key = format!("{}_b", lower_word(rng, 4));
    let a_val = lower_word(rng, 5);
    let b_val = rng.gen_range(0..500i64);
    let schema = json!({
        "allOf": [
            {
                "type": "object",
                "properties": {a_key.clone(): {"type": "string"}},
                "required": [a_key.clone()]
            },
            {
                "properties": {b_key.clone(): {"type": "integer"}},
                "required": [b_key.clone()]
            }
        ]
    });
    let valid = format!(
        "{{{}:{},{}:{}}}",
        quoted(&a_key),
        quoted(&a_val),
        quoted(&b_key),
        b_val
    );
    let missing_b = format!("{{{}:{}}}", quoted(&a_key), quoted(&a_val));
    let wrong_type = format!(
        "{{{}:{},{}:{}}}",
        quoted(&a_key),
        quoted(&a_val),
        quoted(&b_key),
        quoted("str")
    );
    SchemaCase {
        feature: "all-of",
        schema,
        valid: vec![valid],
        invalid: vec![missing_b, wrong_type],
    }
}

fn ref_recursive_case(rng: &mut SmallRng) -> SchemaCase {
    let v1 = rng.gen_range(0..100i64);
    let v2 = rng.gen_range(0..100i64);
    SchemaCase {
        feature: "ref-recursive",
        schema: json!({
            "$ref": "#/$defs/node",
            "$defs": {
                "node": {
                    "type": "object",
                    "properties": {
                        "value": {"type": "integer"},
                        "children": {"type": "array", "items": {"$ref": "#/$defs/node"}}
                    },
                    "required": ["value"]
                }
            }
        }),
        valid: vec![
            format!("{{\"value\":{v1}}}"),
            format!("{{\"value\":{v1},\"children\":[{{\"value\":{v2}}}]}}"),
        ],
        invalid: vec![
            format!("{{\"value\":\"{v1}\"}}"),
            format!("{{\"children\":[{{\"value\":{v2}}}]}}"),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_deterministic_per_seed() {
        let a = schema_corpus(36, 7);
        let b = schema_corpus(36, 7);
        assert_eq!(a, b);
        assert_ne!(a, schema_corpus(36, 8));
    }

    #[test]
    fn corpus_covers_every_feature_class() {
        let corpus = schema_corpus(SCHEMA_FEATURES.len() * 2, 1);
        for feature in SCHEMA_FEATURES {
            assert!(
                corpus.iter().any(|c| c.feature == *feature),
                "feature {feature} missing"
            );
        }
    }

    #[test]
    fn every_case_has_instances_on_both_sides() {
        for case in schema_corpus(60, 3) {
            assert!(!case.valid.is_empty(), "{} has no valid", case.feature);
            assert!(!case.invalid.is_empty(), "{} has no invalid", case.feature);
        }
    }

    #[test]
    fn schemas_compile_and_instances_conform() {
        // Ground-truth check over a slice of the corpus: every schema
        // compiles strictly, every valid instance is accepted byte-wise and
        // every invalid instance is rejected.
        for case in schema_corpus(SCHEMA_FEATURES.len() * 2, 11) {
            let grammar = xg_grammar::json_schema_to_grammar(&case.schema)
                .unwrap_or_else(|e| panic!("{} schema failed: {e}", case.feature));
            let pda = xg_automata::build_pda_default(&grammar);
            for instance in &case.valid {
                assert!(
                    xg_automata::SimpleMatcher::new(&pda).accepts(instance.as_bytes()),
                    "{}: valid instance {instance} rejected",
                    case.feature
                );
            }
            for instance in &case.invalid {
                assert!(
                    !xg_automata::SimpleMatcher::new(&pda).accepts(instance.as_bytes()),
                    "{}: invalid instance {instance} accepted",
                    case.feature
                );
            }
        }
    }
}
