//! Function-calling (JSON Schema) and free-form JSON workloads.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde_json::{json, Value};

use crate::GenerationTask;

/// One function-calling task: the JSON Schema of the function arguments, a
/// natural-language prompt, and a reference argument object that satisfies
/// the schema.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionCallTask {
    /// Name of the callable function.
    pub function_name: String,
    /// JSON Schema of the arguments object.
    pub schema: Value,
    /// Natural-language instruction (≈139 tokens like json-mode-eval).
    pub prompt: String,
    /// A reference argument object satisfying the schema, serialized.
    pub reference: Vec<u8>,
}

const FIRST_NAMES: &[&str] = &[
    "alice", "bob", "carol", "david", "erin", "frank", "grace", "henry", "irene", "jack", "karen",
    "liam", "maria", "nathan", "olivia", "peter", "quinn", "rachel", "samuel", "tina",
];
const CITIES: &[&str] = &[
    "paris", "london", "tokyo", "sydney", "toronto", "berlin", "madrid", "oslo", "dublin",
    "vienna", "prague", "lisbon", "zurich", "seattle", "austin",
];
const PRODUCTS: &[&str] = &[
    "laptop",
    "keyboard",
    "monitor",
    "headphones",
    "webcam",
    "microphone",
    "dock",
    "tablet",
    "charger",
    "router",
];

fn filler_sentence(rng: &mut SmallRng) -> String {
    let subjects = [
        "The user",
        "Our customer",
        "The agent",
        "A client",
        "The operator",
    ];
    let verbs = ["needs", "wants", "requests", "requires", "expects"];
    let objects = [
        "a precise structured answer",
        "the response in the exact JSON format",
        "machine-readable output for the downstream pipeline",
        "a schema-conforming reply without extra prose",
        "a result that can be parsed programmatically",
    ];
    format!(
        "{} {} {}.",
        subjects[rng.gen_range(0..subjects.len())],
        verbs[rng.gen_range(0..verbs.len())],
        objects[rng.gen_range(0..objects.len())]
    )
}

fn make_prompt(rng: &mut SmallRng, instruction: &str) -> String {
    // Pad the instruction with filler context so the prompt length matches
    // the ≈139-token average of json-mode-eval.
    let mut prompt = String::new();
    prompt.push_str("You are a helpful assistant that always answers with a single JSON object ");
    prompt.push_str("matching the provided schema, with no additional commentary. ");
    for _ in 0..6 {
        prompt.push_str(&filler_sentence(rng));
        prompt.push(' ');
    }
    prompt.push_str(instruction);
    prompt
}

/// Generates `count` deterministic function-calling tasks in the style of the
/// `json-mode-eval` dataset.
///
/// # Examples
///
/// ```
/// let tasks = xg_datasets::json_mode_eval_like(5, 42);
/// assert_eq!(tasks.len(), 5);
/// // The reference answer satisfies its own schema syntactically.
/// let parsed: serde_json::Value = serde_json::from_slice(&tasks[0].reference).unwrap();
/// assert!(parsed.is_object());
/// ```
pub fn json_mode_eval_like(count: usize, seed: u64) -> Vec<FunctionCallTask> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..count)
        .map(|i| {
            let kind = i % 5;
            match kind {
                0 => weather_task(&mut rng),
                1 => person_task(&mut rng),
                2 => order_task(&mut rng),
                3 => search_task(&mut rng),
                _ => event_task(&mut rng),
            }
        })
        .collect()
}

fn weather_task(rng: &mut SmallRng) -> FunctionCallTask {
    let city = CITIES[rng.gen_range(0..CITIES.len())];
    let unit = if rng.gen_bool(0.5) {
        "celsius"
    } else {
        "fahrenheit"
    };
    let days = rng.gen_range(1..7);
    let schema = json!({
        "type": "object",
        "properties": {
            "location": {"type": "string"},
            "unit": {"enum": ["celsius", "fahrenheit"]},
            "days": {"type": "integer"}
        },
        "required": ["location", "unit", "days"],
        "additionalProperties": false
    });
    let reference = json!({"location": city, "unit": unit, "days": days});
    FunctionCallTask {
        function_name: "get_weather_forecast".into(),
        prompt: make_prompt(
            rng,
            &format!("Call get_weather_forecast for {city} in {unit} for the next {days} days."),
        ),
        schema,
        reference: serde_json::to_vec(&reference).expect("serializable"),
    }
}

fn person_task(rng: &mut SmallRng) -> FunctionCallTask {
    let name = FIRST_NAMES[rng.gen_range(0..FIRST_NAMES.len())];
    let age = rng.gen_range(18..80);
    let city = CITIES[rng.gen_range(0..CITIES.len())];
    let schema = json!({
        "type": "object",
        "properties": {
            "name": {"type": "string"},
            "age": {"type": "integer"},
            "email": {"type": "string"},
            "address": {
                "type": "object",
                "properties": {
                    "city": {"type": "string"},
                    "zip": {"type": "string"}
                },
                "required": ["city"]
            }
        },
        "required": ["name", "age", "address"],
        "additionalProperties": false
    });
    let reference = json!({
        "name": name,
        "age": age,
        "email": format!("{name}@example.com"),
        "address": {"city": city, "zip": format!("{:05}", rng.gen_range(10000..99999))}
    });
    FunctionCallTask {
        function_name: "register_person".into(),
        prompt: make_prompt(
            rng,
            &format!("Register {name}, aged {age}, living in {city}, as a JSON object."),
        ),
        schema,
        reference: serde_json::to_vec(&reference).expect("serializable"),
    }
}

fn order_task(rng: &mut SmallRng) -> FunctionCallTask {
    let product = PRODUCTS[rng.gen_range(0..PRODUCTS.len())];
    let quantity = rng.gen_range(1..9);
    let schema = json!({
        "type": "object",
        "properties": {
            "items": {
                "type": "array",
                "minItems": 1,
                "items": {
                    "type": "object",
                    "properties": {
                        "product": {"type": "string"},
                        "quantity": {"type": "integer"},
                        "gift_wrap": {"type": "boolean"}
                    },
                    "required": ["product", "quantity"]
                }
            },
            "express": {"type": "boolean"}
        },
        "required": ["items", "express"],
        "additionalProperties": false
    });
    let reference = json!({
        "items": [{"product": product, "quantity": quantity, "gift_wrap": rng.gen_bool(0.3)}],
        "express": rng.gen_bool(0.5)
    });
    FunctionCallTask {
        function_name: "place_order".into(),
        prompt: make_prompt(
            rng,
            &format!(
                "Place an order for {quantity} {product}(s) and state whether shipping is express."
            ),
        ),
        schema,
        reference: serde_json::to_vec(&reference).expect("serializable"),
    }
}

fn search_task(rng: &mut SmallRng) -> FunctionCallTask {
    let term = PRODUCTS[rng.gen_range(0..PRODUCTS.len())];
    let max_price = rng.gen_range(50..900);
    let schema = json!({
        "type": "object",
        "properties": {
            "query": {"type": "string"},
            "max_price": {"type": "number"},
            "in_stock": {"type": "boolean"},
            "sort": {"enum": ["price", "rating", "relevance"]}
        },
        "required": ["query", "max_price"],
        "additionalProperties": false
    });
    let reference = json!({
        "query": term,
        "max_price": max_price,
        "in_stock": true,
        "sort": "price"
    });
    FunctionCallTask {
        function_name: "search_products".into(),
        prompt: make_prompt(
            rng,
            &format!("Search for {term} under {max_price} dollars, sorted by price."),
        ),
        schema,
        reference: serde_json::to_vec(&reference).expect("serializable"),
    }
}

fn event_task(rng: &mut SmallRng) -> FunctionCallTask {
    let name = FIRST_NAMES[rng.gen_range(0..FIRST_NAMES.len())];
    let hour = rng.gen_range(8..19);
    let schema = json!({
        "type": "object",
        "properties": {
            "title": {"type": "string"},
            "start": {"type": "string"},
            "duration_minutes": {"type": "integer"},
            "attendees": {"type": "array", "items": {"type": "string"}, "minItems": 1},
            "online": {"type": "boolean"}
        },
        "required": ["title", "start", "duration_minutes", "attendees"],
        "additionalProperties": false
    });
    let reference = json!({
        "title": format!("sync with {name}"),
        "start": format!("2025-06-{:02}T{:02}:00:00", rng.gen_range(1..28), hour),
        "duration_minutes": 30,
        "attendees": [name, "me"],
        "online": true
    });
    FunctionCallTask {
        function_name: "create_event".into(),
        prompt: make_prompt(
            rng,
            &format!("Schedule a 30 minute meeting with {name} at {hour}:00."),
        ),
        schema,
        reference: serde_json::to_vec(&reference).expect("serializable"),
    }
}

/// Generates free-form JSON documents (nested objects/arrays) used by the
/// CFG (unconstrained JSON) workload.
pub fn json_documents(count: usize, seed: u64) -> Vec<GenerationTask> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let value = random_json(&mut rng, 3);
            GenerationTask::new(
                "Produce a JSON document describing the requested record.".to_string(),
                serde_json::to_vec(&value).expect("serializable"),
            )
        })
        .collect()
}

fn random_json(rng: &mut SmallRng, depth: usize) -> Value {
    if depth == 0 {
        return match rng.gen_range(0..4) {
            0 => json!(rng.gen_range(0..1000)),
            1 => json!(FIRST_NAMES[rng.gen_range(0..FIRST_NAMES.len())]),
            2 => json!(rng.gen_bool(0.5)),
            _ => Value::Null,
        };
    }
    match rng.gen_range(0..3) {
        0 => {
            let n = rng.gen_range(1..4);
            let mut map = serde_json::Map::new();
            for i in 0..n {
                map.insert(format!("field_{i}"), random_json(rng, depth - 1));
            }
            Value::Object(map)
        }
        1 => {
            let n = rng.gen_range(1..4);
            Value::Array((0..n).map(|_| random_json(rng, depth - 1)).collect())
        }
        _ => json!({
            "name": FIRST_NAMES[rng.gen_range(0..FIRST_NAMES.len())],
            "score": rng.gen_range(0..100),
            "tags": [PRODUCTS[rng.gen_range(0..PRODUCTS.len())]]
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tasks_are_deterministic_per_seed() {
        let a = json_mode_eval_like(10, 7);
        let b = json_mode_eval_like(10, 7);
        assert_eq!(a, b);
        let c = json_mode_eval_like(10, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn references_parse_and_match_required_fields() {
        for task in json_mode_eval_like(25, 3) {
            let value: Value = serde_json::from_slice(&task.reference).expect("valid JSON");
            let obj = value.as_object().expect("object");
            let required = task.schema["required"].as_array().expect("required list");
            for field in required {
                assert!(
                    obj.contains_key(field.as_str().unwrap()),
                    "reference of {} misses required field {field}",
                    task.function_name
                );
            }
        }
    }

    #[test]
    fn references_conform_to_their_schema_grammar() {
        // The generated reference must be accepted by the grammar compiled
        // from its own schema — this ties the dataset to the grammar stack.
        for task in json_mode_eval_like(10, 11) {
            let grammar =
                xg_grammar::json_schema_to_grammar(&task.schema).expect("schema converts");
            let pda = xg_automata::build_pda_default(&grammar);
            assert!(
                xg_automata::SimpleMatcher::new(&pda).accepts(&task.reference),
                "reference {:?} rejected by schema grammar of {}",
                String::from_utf8_lossy(&task.reference),
                task.function_name
            );
        }
    }

    #[test]
    fn prompts_are_long_enough_to_mimic_json_mode_eval() {
        for task in json_mode_eval_like(10, 5) {
            let words = task.prompt.split_whitespace().count();
            assert!(words >= 60, "prompt too short: {words} words");
        }
    }

    #[test]
    fn json_documents_are_valid_json() {
        for task in json_documents(20, 9) {
            let value: Result<Value, _> = serde_json::from_slice(&task.reference);
            assert!(value.is_ok());
        }
    }
}
