//! Mixed text corpus used to train the BPE tokenizer substitute.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::{json_documents, python_dsl_tasks, xml_tasks};

const PROSE_WORDS: &[&str] = &[
    "the",
    "model",
    "generates",
    "structured",
    "output",
    "for",
    "downstream",
    "agents",
    "and",
    "tools",
    "with",
    "low",
    "latency",
    "on",
    "every",
    "request",
    "while",
    "keeping",
    "quality",
    "high",
    "users",
    "expect",
    "valid",
    "json",
    "responses",
    "from",
    "function",
    "calls",
    "grammar",
    "constrained",
    "decoding",
    "masks",
    "invalid",
    "tokens",
    "at",
    "each",
    "step",
];

/// Builds a deterministic mixed corpus (prose + JSON + XML + Python DSL) of
/// roughly `target_bytes` bytes, suitable for
/// `xg_tokenizer::BpeModel::train`.
///
/// # Examples
///
/// ```
/// let corpus = xg_datasets::training_corpus(20_000, 1);
/// assert!(corpus.len() >= 20_000);
/// assert!(corpus.contains('{'));
/// ```
pub fn training_corpus(target_bytes: usize, seed: u64) -> String {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out = String::with_capacity(target_bytes + 1024);
    let json = json_documents(64, seed ^ 0x1);
    let xml = xml_tasks(32, seed ^ 0x2);
    let python = python_dsl_tasks(32, seed ^ 0x3);
    let mut i = 0;
    while out.len() < target_bytes {
        match i % 4 {
            0 => {
                for _ in 0..rng.gen_range(8..20) {
                    out.push_str(PROSE_WORDS[rng.gen_range(0..PROSE_WORDS.len())]);
                    out.push(' ');
                }
                out.push('\n');
            }
            1 => {
                let doc = &json[rng.gen_range(0..json.len())];
                out.push_str(&String::from_utf8_lossy(&doc.reference));
                out.push('\n');
            }
            2 => {
                let doc = &xml[rng.gen_range(0..xml.len())];
                out.push_str(&String::from_utf8_lossy(&doc.reference));
                out.push('\n');
            }
            _ => {
                let doc = &python[rng.gen_range(0..python.len())];
                out.push_str(&String::from_utf8_lossy(&doc.reference));
                out.push('\n');
            }
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_deterministic_and_mixed() {
        let a = training_corpus(30_000, 5);
        let b = training_corpus(30_000, 5);
        assert_eq!(a, b);
        assert!(a.len() >= 30_000);
        assert!(a.contains('{') && a.contains('<') && a.contains('='));
    }
}
