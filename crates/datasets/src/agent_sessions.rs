//! Multi-turn agent sessions whose tool catalogs mutate between turns.
//!
//! This is the XGrammar-2 dynamic-registry workload: an agentic session
//! starts with a catalog of registered tools, and between turns the harness
//! adds or removes tools (a new skill is loaded, a deprecated one retired).
//! Each turn then decodes a transcript calling a *currently registered*
//! tool, so the serving engine must keep the compiled dispatch in step with
//! the catalog — ideally via [`DispatchDelta`]s that recompile only the
//! touched trigger rather than the whole registry.
//!
//! Unlike [`tool_call_tasks`](crate::tool_call_tasks) (one shared
//! `"<function="` trigger over a fixed catalog), these catalogs use the
//! default per-tag triggers — one `<function=NAME>` trigger per tool — so
//! every tool owns its segment grammar and catalogs sharing tools share
//! compiled sub-grammars.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde_json::json;
use xg_grammar::{DispatchDelta, StructuralTag, TagContent, TagSpec};

use crate::{GenerationTask, ToolFunction, TOOL_CALL_END};

/// The `i`-th deterministic agent tool: a unique name (`tool_017`) and a
/// unique one-field argument schema (`{"arg_017": <integer>}`), so every
/// tool compiles to its own segment grammar and two catalogs share compiled
/// artifacts exactly for the tools they share.
pub fn agent_tool(i: usize) -> ToolFunction {
    let arg = format!("arg_{i:03}");
    ToolFunction {
        name: format!("tool_{i:03}"),
        schema: json!({
            "type": "object",
            "properties": { arg: { "type": "integer" } },
            "required": [arg],
        }),
    }
}

/// The [`TagSpec`] registering one tool: begin `<function=NAME>`, content
/// constrained by the argument schema, end `</function>`.
pub fn agent_tag_spec(tool: &ToolFunction) -> TagSpec {
    TagSpec {
        begin: tool.begin_tag(),
        content: TagContent::JsonSchema(tool.schema.clone()),
        end: TOOL_CALL_END.to_string(),
    }
}

/// Builds the catalog [`StructuralTag`] for a set of tools, with the default
/// per-tag triggers (each tool's begin tag is its own trigger; the begins
/// end in `>` and tool names are distinct, so the trigger set is infix-free
/// and validates).
pub fn agent_catalog(tools: &[ToolFunction]) -> StructuralTag {
    StructuralTag::new(tools.iter().map(agent_tag_spec).collect())
}

/// Two catalogs of `total` tools each sharing exactly `shared` tools
/// (`shared <= total`): the first holds tools `0..total`, the second ends at
/// the same `shared` tools but replaces the rest with fresh ones. Used to
/// measure cross-registry sub-grammar sharing (a 90%-overlap pair should hit
/// the shared grammar cache ~90% of the time).
pub fn overlapping_catalogs(total: usize, shared: usize) -> (StructuralTag, StructuralTag) {
    assert!(
        shared <= total,
        "shared tools cannot exceed the catalog size"
    );
    let a: Vec<ToolFunction> = (0..total).map(agent_tool).collect();
    let b: Vec<ToolFunction> = (total - shared..2 * total - shared)
        .map(agent_tool)
        .collect();
    (agent_catalog(&a), agent_catalog(&b))
}

/// One turn of an agent session.
#[derive(Debug, Clone, PartialEq)]
pub struct AgentTurn {
    /// The registry mutation applied *before* this turn's request (`None`
    /// for turns that keep the previous catalog).
    pub delta: Option<DispatchDelta>,
    /// The catalog in force for this turn (the previous turn's catalog with
    /// `delta` applied). Always equal to what
    /// [`StructuralTag::apply_delta`] produces, so an engine tracking the
    /// catalog incrementally and one compiling this description fresh
    /// constrain identically.
    pub catalog: StructuralTag,
    /// The turn's request: prose interleaved with one call to a tool that is
    /// registered in `catalog`.
    pub task: GenerationTask,
}

/// A multi-turn agent session with a mutating tool catalog.
#[derive(Debug, Clone, PartialEq)]
pub struct AgentSession {
    /// The catalog registered before the first turn.
    pub initial: StructuralTag,
    /// The session's turns, in order.
    pub turns: Vec<AgentTurn>,
}

const PREAMBLES: &[&str] = &[
    "Let me call the right tool for that. ",
    "Checking with the registered tool now. ",
    "I will run that lookup. ",
    "On it — invoking the tool. ",
];

const POSTAMBLES: &[&str] = &[
    " I will summarize once it returns.",
    " Done; ask away if you need more.",
    " That request is in flight.",
    " Results incoming shortly.",
];

/// Generates `sessions` deterministic agent sessions. Each starts from a
/// catalog of `catalog_size` tools (sessions overlap heavily in their
/// catalogs, like tenants sharing a tool library) and runs `turns` turns;
/// between turns the catalog mutates with probability ½ — alternating
/// between registering a fresh tool ([`DispatchDelta::AddTag`]) and
/// retiring a random live one ([`DispatchDelta::RemoveTag`]) so the size
/// stays near `catalog_size`. Every turn's reference calls a tool live in
/// that turn's catalog.
///
/// # Panics
///
/// Panics if `catalog_size` is zero (a session needs at least one tool to
/// call).
pub fn agent_sessions(
    sessions: usize,
    catalog_size: usize,
    turns: usize,
    seed: u64,
) -> Vec<AgentSession> {
    assert!(catalog_size > 0, "agent sessions need a non-empty catalog");
    let mut rng = SmallRng::seed_from_u64(seed);
    // Fresh tools added mid-session come from an id range no initial catalog
    // uses, so AddTag never collides with a live registration.
    let mut next_fresh = 10 * (catalog_size + sessions);
    (0..sessions)
        .map(|s| {
            // Session catalogs are overlapping windows into one tool list.
            let mut tools: Vec<ToolFunction> = (s..s + catalog_size).map(agent_tool).collect();
            let initial = agent_catalog(&tools);
            let mut catalog = initial.clone();
            let mut add_next = true;
            let turns = (0..turns)
                .map(|_| {
                    let delta = if rng.gen_bool(0.5) {
                        // Keep the catalog non-empty: adds are forced once
                        // it shrinks to a single tool.
                        if add_next || tools.len() <= 1 {
                            add_next = false;
                            let tool = agent_tool(next_fresh);
                            next_fresh += 1;
                            let delta = DispatchDelta::AddTag(agent_tag_spec(&tool));
                            tools.push(tool);
                            Some(delta)
                        } else {
                            add_next = true;
                            let victim = tools.remove(rng.gen_range(0..tools.len()));
                            Some(DispatchDelta::RemoveTag {
                                begin: victim.begin_tag(),
                            })
                        }
                    } else {
                        None
                    };
                    if let Some(delta) = &delta {
                        catalog = catalog
                            .apply_delta(delta)
                            .expect("generated deltas are valid");
                    }
                    let callee = &tools[rng.gen_range(0..tools.len())];
                    let args =
                        json!({ format!("arg_{}", &callee.name[5..]): rng.gen_range(0..1000) });
                    let mut reference = Vec::new();
                    reference
                        .extend_from_slice(PREAMBLES[rng.gen_range(0..PREAMBLES.len())].as_bytes());
                    reference.extend_from_slice(callee.begin_tag().as_bytes());
                    reference.extend_from_slice(&serde_json::to_vec(&args).expect("serializable"));
                    reference.extend_from_slice(TOOL_CALL_END.as_bytes());
                    reference.extend_from_slice(
                        POSTAMBLES[rng.gen_range(0..POSTAMBLES.len())].as_bytes(),
                    );
                    AgentTurn {
                        delta,
                        catalog: catalog.clone(),
                        task: GenerationTask::new(
                            format!(
                                "Call {} by writing <function=NAME>{{json arguments}}\
                                 </function> inline in your answer.",
                                callee.name
                            ),
                            reference,
                        ),
                    }
                })
                .collect();
            AgentSession { initial, turns }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sessions_are_deterministic_per_seed() {
        assert_eq!(agent_sessions(4, 6, 5, 9), agent_sessions(4, 6, 5, 9));
        assert_ne!(agent_sessions(4, 6, 5, 9), agent_sessions(4, 6, 5, 10));
    }

    #[test]
    fn turn_catalogs_follow_the_deltas_and_validate() {
        for session in agent_sessions(5, 4, 8, 42) {
            session.initial.validate().expect("initial validates");
            let mut catalog = session.initial.clone();
            let mut mutated = 0;
            for turn in &session.turns {
                if let Some(delta) = &turn.delta {
                    catalog = catalog.apply_delta(delta).expect("delta applies");
                    mutated += 1;
                }
                assert_eq!(catalog, turn.catalog, "catalog must track the deltas");
                turn.catalog.validate().expect("turn catalog validates");
                assert!(!turn.catalog.tags.is_empty());
            }
            assert!(mutated <= session.turns.len());
        }
    }

    #[test]
    fn references_call_only_live_tools() {
        for session in agent_sessions(6, 3, 6, 7) {
            for turn in &session.turns {
                let text = String::from_utf8(turn.task.reference.clone()).unwrap();
                let begin = turn
                    .catalog
                    .tags
                    .iter()
                    .find(|t| text.contains(&t.begin))
                    .expect("reference calls a registered tool");
                // The payload satisfies the called tool's one-field shape.
                let payload = text
                    .split(begin.begin.as_str())
                    .nth(1)
                    .and_then(|rest| rest.split(TOOL_CALL_END).next())
                    .unwrap();
                let parsed: serde_json::Value = serde_json::from_str(payload).unwrap();
                assert!(parsed.as_object().is_some_and(|o| o.len() == 1));
            }
        }
    }

    #[test]
    fn overlapping_catalogs_share_exactly_the_requested_tools() {
        let (a, b) = overlapping_catalogs(10, 9);
        assert_eq!(a.tags.len(), 10);
        assert_eq!(b.tags.len(), 10);
        let shared = b.tags.iter().filter(|t| a.tags.contains(t)).count();
        assert_eq!(shared, 9);
    }
}
