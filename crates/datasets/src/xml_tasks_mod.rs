//! Synthetic XML code-generation workload (the paper's CFG (XML) task and
//! the XML half of Table 4).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::GenerationTask;

const TAGS: &[&str] = &[
    "note", "item", "config", "user", "order", "entry", "record", "message", "task", "report",
];
const ATTRS: &[&str] = &["id", "name", "status", "priority", "category", "version"];
const WORDS: &[&str] = &[
    "alpha", "beta", "gamma", "delta", "omega", "pending", "done", "active", "high", "low",
    "review", "draft",
];

fn random_element(rng: &mut SmallRng, depth: usize, out: &mut String) {
    let tag = TAGS[rng.gen_range(0..TAGS.len())];
    out.push('<');
    out.push_str(tag);
    for _ in 0..rng.gen_range(0..3) {
        let attr = ATTRS[rng.gen_range(0..ATTRS.len())];
        let value = WORDS[rng.gen_range(0..WORDS.len())];
        out.push(' ');
        out.push_str(attr);
        out.push_str("=\"");
        out.push_str(value);
        out.push('"');
    }
    if depth == 0 || rng.gen_bool(0.25) {
        out.push_str("/>");
        return;
    }
    out.push('>');
    let children = rng.gen_range(1..4);
    for _ in 0..children {
        if rng.gen_bool(0.5) {
            out.push_str(WORDS[rng.gen_range(0..WORDS.len())]);
        } else {
            random_element(rng, depth - 1, out);
        }
    }
    out.push_str("</");
    out.push_str(tag);
    out.push('>');
}

/// Generates `count` deterministic XML code-generation tasks.
///
/// # Examples
///
/// ```
/// let tasks = xg_datasets::xml_tasks(3, 1);
/// assert_eq!(tasks.len(), 3);
/// assert!(tasks[0].reference.starts_with(b"<"));
/// ```
pub fn xml_tasks(count: usize, seed: u64) -> Vec<GenerationTask> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let mut doc = String::new();
            random_element(&mut rng, 3, &mut doc);
            GenerationTask::new(
                "Generate an XML document for the requested record. Answer with XML only."
                    .to_string(),
                doc.into_bytes(),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xml_tasks_are_deterministic_and_grammatical() {
        let a = xml_tasks(10, 4);
        let b = xml_tasks(10, 4);
        assert_eq!(a, b);
        let grammar = xg_grammar::builtin::xml_grammar();
        let pda = xg_automata::build_pda_default(&grammar);
        for task in &a {
            assert!(
                xg_automata::SimpleMatcher::new(&pda).accepts(&task.reference),
                "generated XML rejected by the XML grammar: {}",
                String::from_utf8_lossy(&task.reference)
            );
        }
    }
}
