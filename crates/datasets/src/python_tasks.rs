//! Synthetic Python-DSL generation workload (the paper's CFG (Python DSL)
//! task).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::GenerationTask;

const VARS: &[&str] = &[
    "x", "y", "total", "count", "result", "value", "item", "flag", "n", "acc",
];
const FUNCS: &[&str] = &[
    "compute", "process", "load", "score", "check", "fetch", "parse",
];

fn random_expr(rng: &mut SmallRng, depth: usize) -> String {
    if depth == 0 {
        return match rng.gen_range(0..4) {
            0 => VARS[rng.gen_range(0..VARS.len())].to_string(),
            1 => rng.gen_range(0..100u32).to_string(),
            2 => format!("\"{}\"", VARS[rng.gen_range(0..VARS.len())]),
            _ => if rng.gen_bool(0.5) { "True" } else { "False" }.to_string(),
        };
    }
    match rng.gen_range(0..4) {
        0 => format!(
            "{} + {}",
            random_expr(rng, depth - 1),
            random_expr(rng, depth - 1)
        ),
        1 => format!(
            "{}({})",
            FUNCS[rng.gen_range(0..FUNCS.len())],
            random_expr(rng, depth - 1)
        ),
        2 => format!(
            "{} * {}",
            random_expr(rng, depth - 1),
            random_expr(rng, depth - 1)
        ),
        _ => random_expr(rng, depth - 1),
    }
}

fn random_stmt(rng: &mut SmallRng) -> String {
    match rng.gen_range(0..4) {
        0 => format!(
            "{} = {}",
            VARS[rng.gen_range(0..VARS.len())],
            random_expr(rng, 2)
        ),
        1 => format!(
            "if {} > {}: {} = {}",
            VARS[rng.gen_range(0..VARS.len())],
            rng.gen_range(0..50),
            VARS[rng.gen_range(0..VARS.len())],
            random_expr(rng, 1)
        ),
        2 => format!(
            "for {} in {}({}): {} = {} + {}",
            "i",
            "range",
            rng.gen_range(1..20),
            VARS[rng.gen_range(0..VARS.len())],
            VARS[rng.gen_range(0..VARS.len())],
            "i"
        ),
        _ => format!(
            "while {}: {} = {}({})",
            VARS[rng.gen_range(0..VARS.len())],
            VARS[rng.gen_range(0..VARS.len())],
            FUNCS[rng.gen_range(0..FUNCS.len())],
            VARS[rng.gen_range(0..VARS.len())]
        ),
    }
}

/// Generates `count` deterministic Python-DSL snippets (assignments, `if`,
/// `for`, `while`; indentation ignored, as in the paper).
///
/// # Examples
///
/// ```
/// let tasks = xg_datasets::python_dsl_tasks(3, 0);
/// assert_eq!(tasks.len(), 3);
/// ```
pub fn python_dsl_tasks(count: usize, seed: u64) -> Vec<GenerationTask> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let statements: Vec<String> = (0..rng.gen_range(3..7))
                .map(|_| random_stmt(&mut rng))
                .collect();
            GenerationTask::new(
                "Write a short script in the restricted Python DSL.".to_string(),
                statements.join("\n").into_bytes(),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn python_tasks_are_deterministic_and_grammatical() {
        let a = python_dsl_tasks(10, 2);
        assert_eq!(a, python_dsl_tasks(10, 2));
        let grammar = xg_grammar::builtin::python_dsl_grammar();
        let pda = xg_automata::build_pda_default(&grammar);
        for task in &a {
            assert!(
                xg_automata::SimpleMatcher::new(&pda).accepts(&task.reference),
                "generated DSL rejected by the grammar:\n{}",
                String::from_utf8_lossy(&task.reference)
            );
        }
    }
}
