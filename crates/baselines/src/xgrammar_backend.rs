//! Adapter exposing the `xg-core` engine through the common backend
//! interface, so the benchmark harness and the serving engine can swap it
//! against the baselines.

use std::sync::Arc;

use xg_core::{CompiledGrammar, CompilerConfig, GrammarCompiler, GrammarMatcher, TokenBitmask};
use xg_grammar::Grammar;
use xg_tokenizer::{TokenId, Vocabulary};

use crate::{BackendError, BackendSession, CompiledConstraint, ConstrainedBackend};

/// The XGrammar engine behind the common backend interface.
#[derive(Debug)]
pub struct XGrammarBackend {
    compiler: GrammarCompiler,
}

impl XGrammarBackend {
    /// Creates the backend with the default (fully optimized) configuration.
    pub fn new(vocab: Arc<Vocabulary>) -> Self {
        Self::with_config(vocab, CompilerConfig::default())
    }

    /// Creates the backend with an explicit compiler configuration (used by
    /// the ablation study).
    pub fn with_config(vocab: Arc<Vocabulary>, config: CompilerConfig) -> Self {
        XGrammarBackend {
            compiler: GrammarCompiler::with_config(vocab, config),
        }
    }

    /// Access to the underlying compiler (e.g. for preprocessing statistics).
    pub fn compiler(&self) -> &GrammarCompiler {
        &self.compiler
    }
}

impl ConstrainedBackend for XGrammarBackend {
    fn name(&self) -> &'static str {
        "XGrammar"
    }

    fn vocabulary(&self) -> &Arc<Vocabulary> {
        self.compiler.vocabulary()
    }

    fn compile(&self, grammar: &Grammar) -> Result<Arc<dyn CompiledConstraint>, BackendError> {
        Ok(Arc::new(XGrammarCompiled {
            compiled: self.compiler.compile_grammar(grammar),
        }))
    }
}

#[derive(Debug)]
struct XGrammarCompiled {
    compiled: Arc<CompiledGrammar>,
}

impl CompiledConstraint for XGrammarCompiled {
    fn new_session(&self) -> Box<dyn BackendSession> {
        Box::new(XGrammarSession {
            matcher: GrammarMatcher::new(Arc::clone(&self.compiled)),
        })
    }
}

#[derive(Debug)]
struct XGrammarSession {
    matcher: GrammarMatcher,
}

impl BackendSession for XGrammarSession {
    fn fill_mask(&mut self, mask: &mut TokenBitmask) {
        self.matcher.fill_next_token_bitmask(mask);
    }

    fn accept_token(&mut self, token: TokenId) -> bool {
        self.matcher.accept_token(token).is_ok()
    }

    fn can_terminate(&mut self) -> bool {
        self.matcher.can_terminate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{drive_session_bytes, small_vocab};
    use crate::ConstrainedBackend;

    #[test]
    fn xgrammar_backend_roundtrip() {
        let vocab = small_vocab();
        let backend = XGrammarBackend::new(Arc::clone(&vocab));
        let compiled = backend
            .compile(&xg_grammar::builtin::json_grammar())
            .unwrap();
        let mut session = compiled.new_session();
        assert!(drive_session_bytes(&vocab, session.as_mut(), br#"[1, {"k": "v"}]"#));
        assert!(session.can_terminate());
        // EOS is accepted once the structure is complete.
        assert!(session.accept_token(vocab.eos().unwrap()));
    }

    #[test]
    fn ablation_configs_produce_working_backends() {
        let vocab = small_vocab();
        for config in [CompilerConfig::baseline(), CompilerConfig::default()] {
            let backend = XGrammarBackend::with_config(Arc::clone(&vocab), config);
            let compiled = backend
                .compile(&xg_grammar::parse_ebnf(r#"root ::= "[" [0-9]+ "]""#, "root").unwrap())
                .unwrap();
            let mut session = compiled.new_session();
            assert!(drive_session_bytes(&vocab, session.as_mut(), b"[12]"));
            assert!(session.can_terminate());
        }
    }
}
