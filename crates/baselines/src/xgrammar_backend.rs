//! Adapter exposing the `xg-core` engine through the common backend
//! interface, so the benchmark harness and the serving engine can swap it
//! against the baselines.
//!
//! Every compiled constraint — fully-constrained grammar or structural-tag
//! dispatch — is wrapped in one session type driving a boxed
//! [`ConstraintMatcher`] drawn from a [`MatcherPool`]: the only per-kind code
//! is the constraint *construction* (which compile entry point to call);
//! masks, token acceptance, jump-forward and termination all flow through
//! the trait.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use xg_core::{
    CompilerConfig, ConstraintFactory, ConstraintMatcher, GrammarCache, GrammarCacheKey,
    GrammarCacheStats, GrammarCompiler, MatcherPool, TokenBitmask,
};
use xg_grammar::{DispatchDelta, Grammar, StructuralTag};
use xg_tokenizer::{TokenId, Vocabulary};

use crate::{BackendError, BackendSession, CompiledConstraint, ConstrainedBackend};

/// The XGrammar engine behind the common backend interface.
#[derive(Debug)]
pub struct XGrammarBackend {
    compiler: GrammarCompiler,
    /// One matcher pool per live compiled constraint, so repeated `compile()`
    /// / `compile_structural()` calls for the same (cached) artifact hand out
    /// the same pool and sessions of successive batches actually recycle
    /// matchers. Pools pin their compiled artifact, so entries whose grammar
    /// the `GrammarCache` has evicted are pruned whenever the cache's
    /// eviction counter has moved — the cache's byte budget stays the bound
    /// on resident compiled grammars.
    pools: Mutex<PoolState>,
}

/// Key of a pooled compiled constraint: the grammar cache key for ordinary
/// grammars, the compiled dispatch's factory identity for structural tags
/// (whose compilation is memoized per compiler, giving a stable artifact per
/// tool registry). This enum is the backend's single per-constraint-kind
/// branch point — everything downstream is `dyn ConstraintMatcher`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum PoolKey {
    Grammar(GrammarCacheKey),
    Structural(usize),
}

/// The matcher pools plus, for each cache the pools shadow, the eviction
/// count at the last prune; pruning is skipped (and costs nothing) while
/// both counts are unchanged — in particular forever for unbounded caches
/// under stable registries.
#[derive(Debug, Default)]
struct PoolState {
    by_key: HashMap<PoolKey, Arc<XGrammarCompiled>>,
    /// [`GrammarCache`] eviction count at the last prune.
    pruned_at_eviction_count: u64,
    /// Compiler [`TagDispatchCache`](xg_core::TagDispatchCache) eviction
    /// count at the last prune — dispatch evictions (LRU, byte budget, or
    /// incremental updates displacing old registry versions) must unpin the
    /// stale structural pools even when no grammar was evicted.
    dispatch_pruned_at_eviction_count: u64,
}

/// Cap on structural-tag pools retained by the backend, mirroring the
/// compiler's dispatch-cache entry cap (stale pools would pin compiled
/// dispatches the cache has already evicted).
const STRUCTURAL_POOL_CAP: usize = 64;

impl XGrammarBackend {
    /// Creates the backend with the default (fully optimized) configuration.
    pub fn new(vocab: Arc<Vocabulary>) -> Self {
        Self::with_config(vocab, CompilerConfig::default())
    }

    /// Creates the backend with an explicit compiler configuration (used by
    /// the ablation study).
    pub fn with_config(vocab: Arc<Vocabulary>, config: CompilerConfig) -> Self {
        XGrammarBackend {
            compiler: GrammarCompiler::with_config(vocab, config),
            pools: Mutex::new(PoolState::default()),
        }
    }

    /// Creates the backend on top of a shared [`GrammarCache`], so several
    /// backends / serving engines draw compiled grammars from one budgeted,
    /// compile-once pool.
    pub fn with_cache(
        vocab: Arc<Vocabulary>,
        config: CompilerConfig,
        cache: Arc<GrammarCache>,
    ) -> Self {
        XGrammarBackend {
            compiler: GrammarCompiler::with_cache(vocab, config, cache),
            pools: Mutex::new(PoolState::default()),
        }
    }

    /// The shared pool wrapper for a compiled constraint, creating it on
    /// first sight. A pool is only reused while its artifact is still the
    /// live one (an evicted-and-recompiled grammar gets a fresh pool), and
    /// stale pools are dropped so the cache budget bounds resident grammars.
    fn pool_for(&self, key: PoolKey, factory: Arc<dyn ConstraintFactory>) -> Arc<XGrammarCompiled> {
        let cache = self.compiler.cache();
        let mut state = self.pools.lock().unwrap_or_else(|e| e.into_inner());
        // Prune on every lookup (not just inserts): a workload that settles
        // on a stable grammar set would otherwise never drop pools whose
        // grammars another sharer of the cache has since evicted. Skipped
        // while both eviction counters are unchanged (always, for unbounded
        // caches under stable registries). The dispatch counter matters on
        // its own: an incremental registry update or dispatch-LRU eviction
        // drops a registry without evicting any shared sub-grammar, and its
        // pool must not stay pinned.
        let evictions = cache.eviction_count();
        let dispatch_evictions = self.compiler.dispatch_cache().eviction_count();
        if state.pruned_at_eviction_count != evictions
            || state.dispatch_pruned_at_eviction_count != dispatch_evictions
        {
            state.pruned_at_eviction_count = evictions;
            state.dispatch_pruned_at_eviction_count = dispatch_evictions;
            state.by_key.retain(|k, _| match k {
                PoolKey::Grammar(key) => cache.contains(key),
                // Structural pools pin whole compiled dispatches (every
                // per-trigger grammar plus idle inner matchers); drop them
                // once the compiler's dispatch cache no longer holds the
                // registry, so evicted tool registries do not stay resident
                // outside the cache budget.
                PoolKey::Structural(key) => self.compiler.has_cached_tag_dispatch(*key),
            });
        }
        if let Some(existing) = state.by_key.get(&key) {
            if existing.pool.factory_key() == factory.factory_key() {
                return Arc::clone(existing);
            }
        }
        if matches!(key, PoolKey::Structural(_)) {
            let structural = state
                .by_key
                .keys()
                .filter(|k| matches!(k, PoolKey::Structural(_)))
                .count();
            if structural >= STRUCTURAL_POOL_CAP {
                state
                    .by_key
                    .retain(|k, _| !matches!(k, PoolKey::Structural(_)));
            }
        }
        let entry = Arc::new(XGrammarCompiled {
            pool: Arc::new(MatcherPool::new(factory)),
        });
        state.by_key.insert(key, Arc::clone(&entry));
        entry
    }

    /// Replaces the compiler's structural-tag dispatch cache with one using
    /// the given budget (builder-style; call before serving). Lets tests and
    /// memory-constrained deployments bound how many compiled tool
    /// registries stay resident.
    #[must_use]
    pub fn with_dispatch_cache_config(mut self, config: xg_core::TagDispatchCacheConfig) -> Self {
        self.compiler = self.compiler.with_dispatch_cache_config(config);
        self
    }

    /// Access to the underlying compiler (e.g. for preprocessing statistics).
    pub fn compiler(&self) -> &GrammarCompiler {
        &self.compiler
    }
}

impl ConstrainedBackend for XGrammarBackend {
    fn name(&self) -> &'static str {
        "XGrammar"
    }

    fn vocabulary(&self) -> &Arc<Vocabulary> {
        self.compiler.vocabulary()
    }

    fn compile(&self, grammar: &Grammar) -> Result<Arc<dyn CompiledConstraint>, BackendError> {
        let key = self.compiler.cache_key(grammar);
        // The checked path enforces the compiler's lint mode: in strict mode
        // a grammar with error-severity diagnostics (unsatisfiable root,
        // vocabulary dead states, …) is rejected here — at admission — rather
        // than wedging a decode lane later. The compiled artifact is cached
        // either way, so resubmissions fail fast.
        let compiled = self
            .compiler
            .compile_grammar_checked_with_key(key, grammar)
            .map_err(|e| BackendError::UnsupportedGrammar {
                backend: self.name(),
                reason: e.to_string(),
            })?;
        Ok(self.pool_for(PoolKey::Grammar(key), compiled) as Arc<dyn CompiledConstraint>)
    }

    fn compile_structural(
        &self,
        tag: &StructuralTag,
    ) -> Result<Arc<dyn CompiledConstraint>, BackendError> {
        // The per-trigger combined grammars run through the ordinary cached
        // compile path, so repeated tool schemas compile once per cache; the
        // dispatch build itself is memoized, so the factory key is stable per
        // tool registry and the pool below is shared across batches.
        let compiled = self.compiler.compile_tag_dispatch(tag).map_err(|e| {
            BackendError::UnsupportedGrammar {
                backend: self.name(),
                reason: e.to_string(),
            }
        })?;
        let key = PoolKey::Structural(ConstraintFactory::factory_key(&*compiled));
        Ok(self.pool_for(key, compiled) as Arc<dyn CompiledConstraint>)
    }

    fn update_structural(
        &self,
        current: &StructuralTag,
        delta: &DispatchDelta,
    ) -> Result<(StructuralTag, Arc<dyn CompiledConstraint>), BackendError> {
        let to_backend_error = |e: xg_grammar::GrammarError| BackendError::UnsupportedGrammar {
            backend: self.name(),
            reason: e.to_string(),
        };
        // `current` is a dispatch-cache hit whenever it has been served (or
        // updated to) before; a cold base costs one full compile, after
        // which the delta path recompiles only the touched trigger.
        let base = self
            .compiler
            .compile_tag_dispatch(current)
            .map_err(to_backend_error)?;
        let updated = self
            .compiler
            .update_tag_dispatch(&base, delta)
            .map_err(to_backend_error)?;
        let next = updated.source_tag().clone();
        let key = PoolKey::Structural(ConstraintFactory::factory_key(&*updated));
        Ok((
            next,
            self.pool_for(key, updated) as Arc<dyn CompiledConstraint>,
        ))
    }

    fn cache_stats(&self) -> Option<GrammarCacheStats> {
        // Per-backend counters: correct even when several backends share one
        // GrammarCache (the cache-wide counters would mix their traffic).
        Some(self.compiler.local_cache_stats())
    }

    fn is_cached(&self, grammar: &Grammar) -> bool {
        self.compiler
            .cache()
            .contains(&self.compiler.cache_key(grammar))
    }

    fn is_cached_structural(&self, tag: &StructuralTag) -> bool {
        self.compiler.has_cached_tag_dispatch_for(tag)
    }
}

/// A compiled constraint plus its pool of reusable matchers: sessions draw a
/// matcher on creation and return it when dropped, so lanes of successive
/// serving batches reuse matcher allocations — for grammar lanes and
/// tool-calling lanes alike.
#[derive(Debug)]
struct XGrammarCompiled {
    pool: Arc<MatcherPool>,
}

impl CompiledConstraint for XGrammarCompiled {
    fn new_session(&self) -> Box<dyn BackendSession> {
        Box::new(XGrammarSession {
            matcher: Some(self.pool.acquire()),
            pool: Arc::clone(&self.pool),
        })
    }
}

/// The one session type for every constraint kind: a boxed
/// [`ConstraintMatcher`] plus the pool it returns to on drop.
#[derive(Debug)]
struct XGrammarSession {
    /// `Some` for the whole session lifetime; taken in `drop`.
    matcher: Option<Box<dyn ConstraintMatcher>>,
    pool: Arc<MatcherPool>,
}

impl XGrammarSession {
    fn matcher(&mut self) -> &mut dyn ConstraintMatcher {
        self.matcher
            .as_deref_mut()
            .expect("matcher present until drop")
    }
}

impl Drop for XGrammarSession {
    fn drop(&mut self) {
        if let Some(matcher) = self.matcher.take() {
            self.pool.release(matcher);
        }
    }
}

impl BackendSession for XGrammarSession {
    fn fill_mask(&mut self, mask: &mut TokenBitmask) {
        self.matcher().fill_next_token_bitmask(mask);
    }

    fn accept_token(&mut self, token: TokenId) -> bool {
        self.matcher().accept_token(token).is_ok()
    }

    fn accept_tokens_speculative(&mut self, tokens: &[TokenId]) -> usize {
        self.matcher().accept_tokens_speculative(tokens)
    }

    fn mask_batch_key(&self) -> Option<u64> {
        self.matcher
            .as_deref()
            .and_then(|matcher| matcher.mask_batch_key())
    }

    fn fill_mask_base(&mut self, base: &mut TokenBitmask) -> bool {
        self.matcher().fill_mask_base(base)
    }

    fn fill_mask_from_base(&mut self, mask: &mut TokenBitmask, base: &TokenBitmask) {
        self.matcher().fill_next_token_bitmask_from_base(mask, base);
    }

    fn can_terminate(&mut self) -> bool {
        self.matcher().can_terminate()
    }

    fn accept_bytes(&mut self, bytes: &[u8]) -> bool {
        self.matcher().accept_bytes(bytes).is_ok()
    }

    fn find_jump_forward(&mut self) -> Vec<u8> {
        self.matcher().find_jump_forward_string()
    }

    fn rollback(&mut self, num_units: usize) -> bool {
        self.matcher().rollback(num_units).is_ok()
    }

    fn rollback_window(&self) -> usize {
        self.matcher
            .as_deref()
            .map_or(0, |matcher| matcher.rollback_window())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{drive_session_bytes, small_vocab};
    use crate::ConstrainedBackend;

    #[test]
    fn xgrammar_backend_roundtrip() {
        let vocab = small_vocab();
        let backend = XGrammarBackend::new(Arc::clone(&vocab));
        let compiled = backend
            .compile(&xg_grammar::builtin::json_grammar())
            .unwrap();
        let mut session = compiled.new_session();
        assert!(drive_session_bytes(
            &vocab,
            session.as_mut(),
            br#"[1, {"k": "v"}]"#
        ));
        assert!(session.can_terminate());
        // EOS is accepted once the structure is complete.
        assert!(session.accept_token(vocab.eos().unwrap()));
    }

    #[test]
    fn shared_cache_serves_multiple_backends() {
        use xg_core::{GrammarCache, GrammarCacheConfig};

        let vocab = small_vocab();
        let cache = Arc::new(GrammarCache::new(GrammarCacheConfig::default()));
        let a = XGrammarBackend::with_cache(
            Arc::clone(&vocab),
            CompilerConfig::default(),
            Arc::clone(&cache),
        );
        let b = XGrammarBackend::with_cache(
            Arc::clone(&vocab),
            CompilerConfig::default(),
            Arc::clone(&cache),
        );
        let grammar = xg_grammar::builtin::json_grammar();
        a.compile(&grammar).unwrap();
        b.compile(&grammar).unwrap(); // served from the shared cache
                                      // Per-backend counters: `a` compiled, `b` hit the shared entry.
        let stats_a = a
            .cache_stats()
            .expect("xgrammar backends expose cache stats");
        assert_eq!((stats_a.hits, stats_a.misses), (0, 1));
        let stats_b = b.cache_stats().unwrap();
        assert_eq!((stats_b.hits, stats_b.misses), (1, 0));
        // The cache-wide counters aggregate both backends.
        assert_eq!((cache.stats().hits, cache.stats().misses), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn repeated_compiles_share_one_matcher_pool() {
        // Successive batches call compile() again for the same grammar; the
        // sessions must draw from one pool so matchers actually recycle.
        let vocab = small_vocab();
        let backend = XGrammarBackend::new(Arc::clone(&vocab));
        let grammar = xg_grammar::parse_ebnf(r#"root ::= "[" [0-9]+ "]""#, "root").unwrap();
        let first = backend.compile(&grammar).unwrap();
        {
            let mut session = first.new_session();
            assert!(drive_session_bytes(&vocab, session.as_mut(), b"[1]"));
        } // matcher returns to the pool
        let second = backend.compile(&grammar).unwrap();
        let mut session = second.new_session();
        assert!(drive_session_bytes(&vocab, session.as_mut(), b"[2]"));
        drop(session);
        let state = backend.pools.lock().unwrap();
        assert_eq!(state.by_key.len(), 1, "one pool per compiled grammar");
        let pool = &state.by_key.values().next().unwrap().pool;
        assert_eq!(
            pool.created(),
            1,
            "second batch must reuse the first matcher"
        );
        assert_eq!(pool.reused(), 1);
    }

    #[test]
    fn structural_sessions_recycle_matchers_through_one_pool() {
        use xg_grammar::{TagContent, TagSpec};

        let vocab = small_vocab();
        let backend = XGrammarBackend::new(Arc::clone(&vocab));
        let tag = StructuralTag::new(vec![TagSpec {
            begin: "<n>".into(),
            content: TagContent::Ebnf {
                text: "root ::= [0-9]+".into(),
                root: "root".into(),
            },
            end: "</n>".into(),
        }]);
        let first = backend.compile_structural(&tag).unwrap();
        {
            let mut session = first.new_session();
            assert!(drive_session_bytes(&vocab, session.as_mut(), b"a <n>1</n>"));
        } // matcher returns to the pool
          // A fresh compile of the same registry shares pool and matcher.
        let second = backend.compile_structural(&tag).unwrap();
        let mut session = second.new_session();
        assert!(drive_session_bytes(&vocab, session.as_mut(), b"b <n>2</n>"));
        drop(session);
        let state = backend.pools.lock().unwrap();
        assert_eq!(state.by_key.len(), 1, "one pool per tool registry");
        let pool = &state.by_key.values().next().unwrap().pool;
        assert_eq!(pool.created(), 1);
        assert_eq!(pool.reused(), 1);
    }

    #[test]
    fn sessions_recycle_matchers_through_the_pool() {
        let vocab = small_vocab();
        let backend = XGrammarBackend::new(Arc::clone(&vocab));
        let compiled = backend
            .compile(&xg_grammar::parse_ebnf(r#"root ::= "[" [0-9]+ "]""#, "root").unwrap())
            .unwrap();
        {
            let mut first = compiled.new_session();
            assert!(drive_session_bytes(&vocab, first.as_mut(), b"[7]"));
        } // dropped -> matcher returns to the pool
          // The recycled matcher must start from scratch.
        let mut second = compiled.new_session();
        assert!(drive_session_bytes(&vocab, second.as_mut(), b"[12]"));
        assert!(second.can_terminate());
    }

    #[test]
    fn sessions_expose_jump_forward_and_raw_bytes() {
        let vocab = small_vocab();
        let backend = XGrammarBackend::new(Arc::clone(&vocab));
        let compiled = backend
            .compile(&xg_grammar::parse_ebnf(r#"root ::= "{\"id\": " [0-9]+ "}""#, "root").unwrap())
            .unwrap();
        let mut session = compiled.new_session();
        let jump = session.find_jump_forward();
        assert_eq!(jump, b"{\"id\": ".to_vec());
        // The re-tokenized view tiles the same bytes with real tokens.
        let sorted = xg_tokenizer::SortedVocabulary::new(&vocab);
        let run = session.find_jump_forward_tokens(&vocab, &sorted);
        assert_eq!(run.bytes, jump);
        assert_eq!(run.covered, jump.len());
        let tiled: Vec<u8> = run
            .tokens
            .iter()
            .flat_map(|t| vocab.token_bytes(*t).to_vec())
            .collect();
        assert_eq!(tiled, jump);
        assert!(session.accept_bytes(&jump));
        assert!(drive_session_bytes(&vocab, session.as_mut(), b"42}"));
        assert!(session.can_terminate());
        // Forced runs are rollback units: undo everything (the three sampled
        // bytes and the jump) and the same text is forced again.
        assert_eq!(session.rollback_window(), 4);
        assert!(session.rollback(4));
        assert_eq!(session.find_jump_forward(), jump);
        assert!(!session.rollback(100), "over-rollback must be refused");
        // Baseline sessions without jump-forward support report none (the
        // default), rather than forcing every backend to implement it.
        let naive = crate::NaivePdaBackend::new(Arc::clone(&vocab));
        let mut naive_session = naive
            .compile(&xg_grammar::builtin::json_grammar())
            .unwrap()
            .new_session();
        assert!(naive_session.find_jump_forward().is_empty());
        assert!(!naive_session.accept_bytes(b"{"));
    }

    #[test]
    fn evicted_grammars_do_not_stay_pinned_by_pools() {
        use xg_core::{GrammarCache, GrammarCacheConfig};

        // A one-entry cache: compiling a second grammar evicts the first, and
        // the backend must drop the evicted grammar's pool (which pins the
        // compiled grammar) instead of holding it forever.
        let vocab = small_vocab();
        let cache = Arc::new(GrammarCache::new(GrammarCacheConfig {
            max_bytes: usize::MAX,
            max_entries: 1,
        }));
        let backend = XGrammarBackend::with_cache(
            Arc::clone(&vocab),
            CompilerConfig::default(),
            Arc::clone(&cache),
        );
        let g1 = xg_grammar::parse_ebnf(r#"root ::= "a" [0-9]+"#, "root").unwrap();
        let g2 = xg_grammar::parse_ebnf(r#"root ::= "b" [0-9]+"#, "root").unwrap();
        backend.compile(&g1).unwrap();
        assert_eq!(backend.pools.lock().unwrap().by_key.len(), 1);
        backend.compile(&g2).unwrap(); // evicts g1 from the cache
        let state = backend.pools.lock().unwrap();
        assert_eq!(
            state.by_key.len(),
            1,
            "the evicted grammar's pool must be pruned"
        );
        assert!(state
            .by_key
            .contains_key(&PoolKey::Grammar(backend.compiler.cache_key(&g2))));
    }

    #[test]
    fn cache_clear_unpins_pools() {
        use xg_core::{GrammarCache, GrammarCacheConfig};

        let vocab = small_vocab();
        let cache = Arc::new(GrammarCache::new(GrammarCacheConfig::default()));
        let backend = XGrammarBackend::with_cache(
            Arc::clone(&vocab),
            CompilerConfig::default(),
            Arc::clone(&cache),
        );
        let g1 = xg_grammar::parse_ebnf(r#"root ::= "a" [0-9]+"#, "root").unwrap();
        let g2 = xg_grammar::parse_ebnf(r#"root ::= "b" [0-9]+"#, "root").unwrap();
        backend.compile(&g1).unwrap();
        cache.clear(); // counts as evictions, so the next compile prunes
        backend.compile(&g2).unwrap();
        let state = backend.pools.lock().unwrap();
        assert_eq!(
            state.by_key.len(),
            1,
            "cleared grammars must not stay pinned"
        );
        assert!(state
            .by_key
            .contains_key(&PoolKey::Grammar(backend.compiler.cache_key(&g2))));
    }

    #[test]
    fn update_structural_reuses_pools_and_prunes_evicted_registries() {
        use xg_core::TagDispatchCacheConfig;
        use xg_grammar::{TagContent, TagSpec};

        let spec = |name: &str| TagSpec {
            begin: format!("<{name}>"),
            content: TagContent::Ebnf {
                text: "root ::= [0-9]+".into(),
                root: "root".into(),
            },
            end: format!("</{name}>"),
        };
        let vocab = small_vocab();
        // One dispatch-cache slot: every registry version displaces the
        // previous one, so each update is also an eviction.
        let backend = XGrammarBackend::new(Arc::clone(&vocab)).with_dispatch_cache_config(
            TagDispatchCacheConfig {
                max_bytes: usize::MAX,
                max_entries: 1,
            },
        );
        let base = StructuralTag::new(vec![spec("a")]);
        backend.compile_structural(&base).unwrap();
        assert_eq!(backend.pools.lock().unwrap().by_key.len(), 1);
        // Add a tag: the new registry evicts the old from the one-slot
        // cache; the old registry's pool must be pruned on the next lookup
        // even though no *grammar* was evicted.
        let (next, compiled) = backend
            .update_structural(&base, &DispatchDelta::AddTag(spec("b")))
            .unwrap();
        assert_eq!(next.tags.len(), 2);
        {
            let mut session = compiled.new_session();
            assert!(drive_session_bytes(&vocab, session.as_mut(), b"x <b>7</b>"));
        }
        let state = backend.pools.lock().unwrap();
        assert_eq!(
            state.by_key.len(),
            1,
            "the evicted base registry's pool must not stay pinned"
        );
        drop(state);
        // Removing a tag that is not present is a delta validation error
        // surfaced through the backend error type.
        assert!(matches!(
            backend.update_structural(
                &next,
                &DispatchDelta::RemoveTag {
                    begin: "<missing>".into()
                }
            ),
            Err(BackendError::UnsupportedGrammar { .. })
        ));
    }

    #[test]
    fn structural_tags_compile_and_constrain_only_tagged_segments() {
        use xg_grammar::{TagContent, TagSpec};

        let vocab = small_vocab();
        let backend = XGrammarBackend::new(Arc::clone(&vocab));
        let tag = StructuralTag::new(vec![TagSpec {
            begin: "<n>".into(),
            content: TagContent::Ebnf {
                text: "root ::= [0-9]+".into(),
                root: "root".into(),
            },
            end: "</n>".into(),
        }]);
        let compiled = backend.compile_structural(&tag).unwrap();
        let mut session = compiled.new_session();
        // Free prose, then a constrained tagged segment, then prose again.
        assert!(drive_session_bytes(
            &vocab,
            session.as_mut(),
            b"hi <n>42</n> bye"
        ));
        assert!(session.can_terminate());
        assert!(session.accept_token(vocab.eos().unwrap()));
        // A baseline backend reports structural tags as unsupported.
        let naive = crate::NaivePdaBackend::new(Arc::clone(&vocab));
        assert!(matches!(
            naive.compile_structural(&tag),
            Err(BackendError::UnsupportedGrammar { .. })
        ));
    }

    #[test]
    fn sessions_expose_speculative_and_batched_mask_paths() {
        let vocab = small_vocab();
        let backend = XGrammarBackend::new(Arc::clone(&vocab));
        let compiled = backend
            .compile(&xg_grammar::parse_ebnf(r#"root ::= "[" [0-9]+ "]""#, "root").unwrap())
            .unwrap();
        let token = |bytes: &[u8]| {
            vocab
                .iter()
                .find(|(_, t)| *t == bytes)
                .map(|(id, _)| id)
                .expect("token in vocabulary")
        };
        // One-call draft verification: "[12]" is valid, "x" is not.
        let draft = [
            token(b"["),
            token(b"1"),
            token(b"2"),
            token(b"]"),
            token(b"x"),
        ];
        let mut session = compiled.new_session();
        assert_eq!(session.accept_tokens_speculative(&draft), 4);
        assert!(session.can_terminate());
        // Each draft token is one rollback unit.
        assert_eq!(session.rollback_window(), 4);
        assert!(session.rollback(4));
        // Two fresh sessions share a batch key; the base-completed mask
        // matches the full fill bit for bit.
        let mut a = compiled.new_session();
        let mut b = compiled.new_session();
        assert!(a.mask_batch_key().is_some());
        assert_eq!(a.mask_batch_key(), b.mask_batch_key());
        let mut base = TokenBitmask::new_all_rejected(vocab.len());
        assert!(a.fill_mask_base(&mut base));
        let mut from_base = TokenBitmask::new_all_rejected(vocab.len());
        b.fill_mask_from_base(&mut from_base, &base);
        let mut full = TokenBitmask::new_all_rejected(vocab.len());
        a.fill_mask(&mut full);
        assert_eq!(from_base, full);
        // Baseline sessions opt out of batching but keep the speculative
        // default (per-token loop).
        let naive = crate::NaivePdaBackend::new(Arc::clone(&vocab));
        let mut naive_session = naive
            .compile(&xg_grammar::parse_ebnf(r#"root ::= "[" [0-9]+ "]""#, "root").unwrap())
            .unwrap()
            .new_session();
        assert_eq!(naive_session.mask_batch_key(), None);
        assert_eq!(naive_session.accept_tokens_speculative(&draft), 4);
    }

    #[test]
    fn ablation_configs_produce_working_backends() {
        let vocab = small_vocab();
        for config in [CompilerConfig::baseline(), CompilerConfig::default()] {
            let backend = XGrammarBackend::with_config(Arc::clone(&vocab), config);
            let compiled = backend
                .compile(&xg_grammar::parse_ebnf(r#"root ::= "[" [0-9]+ "]""#, "root").unwrap())
                .unwrap();
            let mut session = compiled.new_session();
            assert!(drive_session_bytes(&vocab, session.as_mut(), b"[12]"));
            assert!(session.can_terminate());
        }
    }
}
