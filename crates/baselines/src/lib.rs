//! Baseline constrained-decoding engines used as comparators in the paper's
//! evaluation (Figure 9, Figure 10, Table 3).
//!
//! Three families of baselines are reimplemented as algorithmic equivalents
//! of the systems the paper compares against (see DESIGN.md for the
//! substitution rationale):
//!
//! * [`NaivePdaBackend`] — interprets the pushdown automaton directly and
//!   scans the *entire* vocabulary at every step with copied stacks. This is
//!   the behaviour of llama.cpp's grammar engine and the "PDA Baseline" row
//!   of the ablation study.
//! * [`FsmIndexBackend`] — an Outlines-style FSM approach: the grammar is
//!   unrolled into a finite automaton up to a bounded recursion depth, a
//!   lazy DFA is built over it, and for every DFA state the set of allowed
//!   tokens is computed by scanning the vocabulary once and memoized. Mask
//!   generation is then a table lookup, but unbounded recursion cannot be
//!   expressed and every newly visited state costs a full vocabulary scan.
//! * [`FormatEnforcerBackend`] — an lm-format-enforcer-style character-level
//!   walker: no precomputation at all; every step walks every vocabulary
//!   token through the automaton from the current state. Like the original,
//!   it only supports regular (non-recursive) structures.
//!
//! All backends implement the common [`ConstrainedBackend`] /
//! [`BackendSession`] interface so the benchmark harness and the serving
//! engine can swap them freely.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod format_enforcer;
mod fsm_index;
mod naive_pda;
mod regex_unroll;
mod xgrammar_backend;

pub use format_enforcer::FormatEnforcerBackend;
pub use fsm_index::FsmIndexBackend;
pub use naive_pda::NaivePdaBackend;
pub use regex_unroll::{unroll_grammar_to_fsa, UnrollError};
pub use xgrammar_backend::XGrammarBackend;

use std::fmt;
use std::sync::Arc;

use xg_core::{ForcedTokenRun, GrammarCacheStats, TokenBitmask};
use xg_grammar::{DispatchDelta, Grammar, StructuralTag};
use xg_tokenizer::{SortedVocabulary, TokenId, Vocabulary};

/// Errors produced when a backend cannot handle a grammar.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BackendError {
    /// The grammar is recursive (or exceeds the unrolling depth) and this
    /// backend only supports regular structures.
    UnsupportedGrammar {
        /// Backend name.
        backend: &'static str,
        /// Explanation.
        reason: String,
    },
}

impl fmt::Display for BackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendError::UnsupportedGrammar { backend, reason } => {
                write!(f, "backend {backend} cannot handle this grammar: {reason}")
            }
        }
    }
}

impl std::error::Error for BackendError {}

/// A constrained-decoding backend: compiles grammars into per-request
/// sessions.
pub trait ConstrainedBackend: Send + Sync + fmt::Debug {
    /// Human-readable backend name (used in benchmark tables).
    fn name(&self) -> &'static str;

    /// The vocabulary the backend was built for.
    fn vocabulary(&self) -> &Arc<Vocabulary>;

    /// Prepares a grammar, returning a factory for per-request sessions.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::UnsupportedGrammar`] if the backend cannot
    /// express the grammar (e.g. recursion in a regex-only backend).
    fn compile(&self, grammar: &Grammar) -> Result<Arc<dyn CompiledConstraint>, BackendError>;

    /// Prepares a structural-tag description (free text interleaved with
    /// tagged, grammar-constrained segments). Only engines with a tag
    /// dispatch layer support this; baselines return an error by default.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::UnsupportedGrammar`] if the backend has no
    /// structural-tag support or the description is invalid.
    fn compile_structural(
        &self,
        tag: &StructuralTag,
    ) -> Result<Arc<dyn CompiledConstraint>, BackendError> {
        let _ = tag;
        Err(BackendError::UnsupportedGrammar {
            backend: self.name(),
            reason: "structural tags are not supported by this backend".into(),
        })
    }

    /// Applies a registry mutation to an already-served structural-tag
    /// description: compiles (or fetches) `current`, applies `delta`
    /// incrementally — recompiling only the touched trigger — and returns
    /// the mutated description together with its compiled constraint, ready
    /// for the next turn's requests. Only engines with an incremental tag
    /// dispatch layer support this; baselines return an error by default.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::UnsupportedGrammar`] if the backend has no
    /// incremental structural-tag support, or if the delta is invalid
    /// (duplicate tag, missing tag, or a dead added trigger under strict
    /// lint).
    fn update_structural(
        &self,
        current: &StructuralTag,
        delta: &DispatchDelta,
    ) -> Result<(StructuralTag, Arc<dyn CompiledConstraint>), BackendError> {
        let _ = (current, delta);
        Err(BackendError::UnsupportedGrammar {
            backend: self.name(),
            reason: "incremental structural-tag updates are not supported by this backend".into(),
        })
    }

    /// Compiled-grammar cache counters, for backends that memoize compiled
    /// grammars (the serving engine reports these per batch). Baselines
    /// without a cache return `None`.
    fn cache_stats(&self) -> Option<GrammarCacheStats> {
        None
    }

    /// Returns `true` if the backend already holds a compiled form of
    /// `grammar`, without compiling anything. The serving engine's admission
    /// control uses this to tell cache-hit admissions (near-zero compile
    /// latency) from cold compiles. Backends without a cache return `false`.
    fn is_cached(&self, grammar: &Grammar) -> bool {
        let _ = grammar;
        false
    }

    /// Returns `true` if the backend already holds a compiled form of the
    /// structural-tag description `tag`. Backends without structural-tag
    /// support (or without a memo) return `false`.
    fn is_cached_structural(&self, tag: &StructuralTag) -> bool {
        let _ = tag;
        false
    }
}

/// A compiled constraint shared between requests.
pub trait CompiledConstraint: Send + Sync + fmt::Debug {
    /// Creates a fresh matching session positioned at the start of the
    /// grammar.
    fn new_session(&self) -> Box<dyn BackendSession>;
}

/// Per-request incremental matching state.
///
/// The required methods are the minimum every backend supports; the provided
/// methods surface the richer `ConstraintMatcher` operations (jump-forward,
/// raw forced bytes) with conservative defaults, so engines can use them on
/// any session without branching on the backend kind.
pub trait BackendSession: Send + fmt::Debug {
    /// Fills the bitmask of allowed next tokens.
    fn fill_mask(&mut self, mask: &mut TokenBitmask);

    /// Advances the session with a sampled token. Returns `false` if the
    /// token violates the constraint (the session state is then unspecified
    /// and the request should be aborted).
    fn accept_token(&mut self, token: TokenId) -> bool;

    /// Verifies a speculative draft in one call: accepts the longest valid
    /// prefix of `tokens` and returns its length. The session advances past
    /// exactly the accepted prefix; the first rejected token (if any) leaves
    /// no trace, so the engine can resume ordinary decoding — or roll the
    /// prefix back, on backends with rollback support — without resync. The
    /// default drives the per-token [`accept_token`] loop, which already has
    /// reject-without-advance semantics on every backend.
    ///
    /// [`accept_token`]: Self::accept_token
    fn accept_tokens_speculative(&mut self, tokens: &[TokenId]) -> usize {
        for (i, &token) in tokens.iter().enumerate() {
            if !self.accept_token(token) {
                return i;
            }
        }
        tokens.len()
    }

    /// A key identifying the session's current mask-generation state:
    /// sessions with equal keys produce identical context-independent mask
    /// portions, so a batch scheduler may compute that portion once
    /// ([`fill_mask_base`]) and serve every lane from it
    /// ([`fill_mask_from_base`]). `None` (the default) opts the session out
    /// of batching for this step.
    ///
    /// [`fill_mask_base`]: Self::fill_mask_base
    /// [`fill_mask_from_base`]: Self::fill_mask_from_base
    fn mask_batch_key(&self) -> Option<u64> {
        None
    }

    /// Writes the shared (context-independent) mask portion for the current
    /// [`mask_batch_key`] state into `base`, returning `false` when the
    /// session is not batchable right now (the default). The base is valid
    /// for every session reporting the same key.
    ///
    /// [`mask_batch_key`]: Self::mask_batch_key
    fn fill_mask_base(&mut self, base: &mut TokenBitmask) -> bool {
        let _ = base;
        false
    }

    /// Completes a mask from a shared `base` produced by [`fill_mask_base`]
    /// on a session with the same [`mask_batch_key`]. The default ignores the
    /// base and performs a full [`fill_mask`], so callers may use this
    /// unconditionally once a base exists for the group.
    ///
    /// [`fill_mask`]: Self::fill_mask
    /// [`fill_mask_base`]: Self::fill_mask_base
    /// [`mask_batch_key`]: Self::mask_batch_key
    fn fill_mask_from_base(&mut self, mask: &mut TokenBitmask, base: &TokenBitmask) {
        let _ = base;
        self.fill_mask(mask);
    }

    /// Returns `true` if the text generated so far is a complete instance of
    /// the structure (end-of-sequence is allowed).
    fn can_terminate(&mut self) -> bool;

    /// Advances the session with deterministic raw bytes (jump-forward
    /// text). Returns `false` if the bytes violate the constraint *or* the
    /// backend does not support raw-byte advancement (the default — the
    /// session state is then unchanged and the engine falls back to
    /// per-token decoding).
    fn accept_bytes(&mut self, bytes: &[u8]) -> bool {
        let _ = bytes;
        false
    }

    /// The longest byte string forced by the constraint from the current
    /// position, for jump-forward decoding. Backends without forced-text
    /// detection return an empty vector (the default).
    fn find_jump_forward(&mut self) -> Vec<u8> {
        Vec::new()
    }

    /// The forced continuation re-tokenized against `vocab`: the
    /// longest-prefix token cover of [`find_jump_forward`]'s bytes, computed
    /// through `sorted` (which must be built from `vocab`, the session's
    /// vocabulary). This is the single engine-facing re-tokenization entry
    /// point — mirroring `ConstraintMatcher::find_jump_forward_tokens` in
    /// `xg-core` — so the serving loop never re-implements the cover rule.
    ///
    /// [`find_jump_forward`]: Self::find_jump_forward
    fn find_jump_forward_tokens(
        &mut self,
        vocab: &Vocabulary,
        sorted: &SortedVocabulary,
    ) -> ForcedTokenRun {
        ForcedTokenRun::cover(self.find_jump_forward(), vocab, sorted)
    }

    /// Rolls back the last `num_units` accepted units (each successful
    /// `accept_token` or `accept_bytes` call is one unit). Returns `false`
    /// when the backend does not support rollback or the window holds fewer
    /// units (the default — the session state is then unchanged). Engines use
    /// this to undo speculative forced-token runs.
    fn rollback(&mut self, num_units: usize) -> bool {
        let _ = num_units;
        false
    }

    /// Number of accepted units the session can currently roll back
    /// (`0` for backends without rollback support, the default).
    fn rollback_window(&self) -> usize {
        0
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;
    use xg_tokenizer::test_vocabulary;

    /// Drives a session over the byte string `text` by feeding it the
    /// single-byte tokens of the synthetic vocabulary, asserting every token
    /// is allowed by the freshly generated mask before accepting it.
    pub fn drive_session_bytes(
        vocab: &Vocabulary,
        session: &mut dyn BackendSession,
        text: &[u8],
    ) -> bool {
        let mut mask = TokenBitmask::new_all_rejected(vocab.len());
        for &b in text {
            let token = vocab
                .iter()
                .find(|(_, t)| *t == [b])
                .map(|(id, _)| id)
                .expect("single-byte token exists");
            session.fill_mask(&mut mask);
            if !mask.is_allowed(token) {
                return false;
            }
            if !session.accept_token(token) {
                return false;
            }
        }
        true
    }

    pub fn small_vocab() -> Arc<Vocabulary> {
        Arc::new(test_vocabulary(600))
    }
}
