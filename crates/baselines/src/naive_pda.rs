//! The naive PDA baseline: full-vocabulary scan per decoding step.
//!
//! This reproduces the strategy of llama.cpp's grammar engine (and of the
//! "PDA Baseline" row in the paper's ablation, Table 3): the pushdown
//! automaton is interpreted directly; at every step each vocabulary token is
//! checked by cloning the current matching stacks and pushing the token's
//! bytes through them. No token classification, no cache, no persistent
//! stack, no prefix sharing.

use std::fmt;
use std::sync::Arc;

use xg_automata::{build_pda_default, Pda, SimpleMatcher, StepResult};
use xg_core::TokenBitmask;
use xg_grammar::Grammar;
use xg_tokenizer::{TokenId, Vocabulary};

use crate::{BackendError, BackendSession, CompiledConstraint, ConstrainedBackend};

/// Baseline backend interpreting the PDA with full-vocabulary scans.
#[derive(Debug)]
pub struct NaivePdaBackend {
    vocab: Arc<Vocabulary>,
}

impl NaivePdaBackend {
    /// Creates the backend for a vocabulary.
    pub fn new(vocab: Arc<Vocabulary>) -> Self {
        NaivePdaBackend { vocab }
    }
}

impl ConstrainedBackend for NaivePdaBackend {
    fn name(&self) -> &'static str {
        "llama.cpp-Grammar (naive PDA)"
    }

    fn vocabulary(&self) -> &Arc<Vocabulary> {
        &self.vocab
    }

    fn compile(&self, grammar: &Grammar) -> Result<Arc<dyn CompiledConstraint>, BackendError> {
        Ok(Arc::new(NaiveCompiled {
            pda: build_pda_default(grammar),
            vocab: Arc::clone(&self.vocab),
        }))
    }
}

struct NaiveCompiled {
    pda: Pda,
    vocab: Arc<Vocabulary>,
}

impl fmt::Debug for NaiveCompiled {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NaiveCompiled")
            .field("nodes", &self.pda.node_count())
            .finish()
    }
}

impl CompiledConstraint for NaiveCompiled {
    fn new_session(&self) -> Box<dyn BackendSession> {
        let stacks = vec![vec![self.pda.root_start()]];
        Box::new(NaiveSession {
            pda: self.pda.clone(),
            vocab: Arc::clone(&self.vocab),
            stacks,
        })
    }
}

/// Per-request session: the current matching stacks are kept as plain owned
/// vectors (no sharing, no persistence), exactly like the baseline engines.
#[derive(Debug)]
struct NaiveSession {
    pda: Pda,
    vocab: Arc<Vocabulary>,
    stacks: Vec<xg_automata::MatchStack>,
}

impl NaiveSession {
    fn matcher(&self) -> SimpleMatcher<'_> {
        SimpleMatcher::from_stacks(&self.pda, self.stacks.clone())
    }
}

impl BackendSession for NaiveSession {
    fn fill_mask(&mut self, mask: &mut TokenBitmask) {
        mask.reject_all();
        let base = self.matcher();
        if base.is_dead() {
            return;
        }
        for (token, bytes) in self.vocab.iter() {
            if self.vocab.is_special(token) {
                continue;
            }
            let mut probe = base.clone();
            let mut ok = true;
            for &b in bytes {
                if probe.advance_byte(b) == StepResult::Dead {
                    ok = false;
                    break;
                }
            }
            if ok {
                mask.allow(token);
            }
        }
        if let Some(eos) = self.vocab.eos() {
            if base.can_terminate() {
                mask.allow(eos);
            }
        }
    }

    fn accept_token(&mut self, token: TokenId) -> bool {
        if Some(token) == self.vocab.eos() {
            return self.matcher().can_terminate();
        }
        if self.vocab.is_special(token) {
            return false;
        }
        let bytes = self.vocab.token_bytes(token).to_vec();
        let mut m = self.matcher();
        if !m.advance_bytes(&bytes) {
            return false;
        }
        self.stacks = m.stacks().to_vec();
        true
    }

    fn can_terminate(&mut self) -> bool {
        self.matcher().can_terminate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{drive_session_bytes, small_vocab};

    #[test]
    fn naive_backend_enforces_json() {
        let vocab = small_vocab();
        let backend = NaivePdaBackend::new(Arc::clone(&vocab));
        let compiled = backend
            .compile(&xg_grammar::builtin::json_grammar())
            .unwrap();
        let mut session = compiled.new_session();
        assert!(drive_session_bytes(
            &vocab,
            session.as_mut(),
            br#"{"a": 1}"#
        ));
        assert!(session.can_terminate());
    }

    #[test]
    fn naive_backend_rejects_invalid_tokens() {
        let vocab = small_vocab();
        let backend = NaivePdaBackend::new(Arc::clone(&vocab));
        let compiled = backend
            .compile(&xg_grammar::builtin::json_grammar())
            .unwrap();
        let mut session = compiled.new_session();
        let x_token = vocab.iter().find(|(_, t)| *t == b"x").unwrap().0;
        assert!(!session.accept_token(x_token));
        let brace = vocab.iter().find(|(_, t)| *t == b"{").unwrap().0;
        assert!(session.accept_token(brace));
    }

    #[test]
    fn mask_matches_xgrammar_reference() {
        // The naive scan and the cached XGrammar engine must produce the same
        // set of allowed tokens.
        let vocab = small_vocab();
        let grammar = xg_grammar::parse_ebnf(r#"root ::= "[" [0-9]+ "]""#, "root").unwrap();

        let naive = NaivePdaBackend::new(Arc::clone(&vocab));
        let naive_compiled = naive.compile(&grammar).unwrap();
        let mut naive_session = naive_compiled.new_session();

        let xg = crate::XGrammarBackend::new(Arc::clone(&vocab));
        let xg_compiled = xg.compile(&grammar).unwrap();
        let mut xg_session = xg_compiled.new_session();

        let mut mask_a = TokenBitmask::new_all_rejected(vocab.len());
        let mut mask_b = TokenBitmask::new_all_rejected(vocab.len());
        naive_session.fill_mask(&mut mask_a);
        xg_session.fill_mask(&mut mask_b);
        assert_eq!(mask_a, mask_b);
    }
}
