//! Depth-bounded unrolling of a grammar into a finite-state automaton.
//!
//! Regex-based constrained-decoding systems (Outlines, lm-format-enforcer)
//! represent the structure as a finite automaton. Context-free grammars with
//! recursion cannot be expressed exactly; the practical workaround those
//! systems use (and the one we reproduce) is to unroll rule references up to
//! a bounded depth. Recursion beyond the bound is *truncated*: the resulting
//! automaton accepts only the sub-language with bounded nesting, which is
//! exactly the limitation the paper attributes to regex-based methods.

use std::collections::HashMap;

use xg_automata::fsa::{Fsa, StateId};
use xg_automata::utf8::utf8_sequences;
use xg_automata::ByteRange;
use xg_grammar::{Grammar, GrammarExpr, RuleId};

/// Errors produced during unrolling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UnrollError {
    /// The unrolled automaton exceeded the state budget.
    TooManyStates {
        /// The configured state budget.
        max_states: usize,
    },
    /// After truncating recursion at the depth bound, the automaton accepts
    /// nothing (the grammar has no sentence of bounded nesting depth).
    EmptyLanguage {
        /// The configured depth bound.
        max_depth: usize,
    },
}

impl std::fmt::Display for UnrollError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UnrollError::TooManyStates { max_states } => {
                write!(f, "unrolled automaton exceeds {max_states} states")
            }
            UnrollError::EmptyLanguage { max_depth } => write!(
                f,
                "grammar has no sentence with rule nesting below {max_depth}"
            ),
        }
    }
}

impl std::error::Error for UnrollError {}

/// Returns `true` if the grammar's rule-reference graph (restricted to rules
/// reachable from the root) contains a cycle, i.e. the grammar is genuinely
/// recursive and cannot be expressed as a finite automaton.
pub fn grammar_is_recursive(grammar: &Grammar) -> bool {
    fn visit(
        grammar: &Grammar,
        rule: RuleId,
        visiting: &mut Vec<bool>,
        done: &mut Vec<bool>,
    ) -> bool {
        if done[rule.index()] {
            return false;
        }
        if visiting[rule.index()] {
            return true;
        }
        visiting[rule.index()] = true;
        let mut refs = Vec::new();
        grammar
            .rule(rule)
            .body
            .for_each_rule_ref(&mut |r| refs.push(r));
        let recursive = refs.into_iter().any(|r| visit(grammar, r, visiting, done));
        visiting[rule.index()] = false;
        done[rule.index()] = !recursive;
        recursive
    }
    let mut visiting = vec![false; grammar.len()];
    let mut done = vec![false; grammar.len()];
    visit(grammar, grammar.root(), &mut visiting, &mut done)
}

/// Unrolls `grammar` into a byte-level NFA, expanding rule references up to
/// `max_depth` nested levels. Unbounded repetitions are kept as automaton
/// loops (they are regular); only *rule recursion* is bounded, and recursive
/// branches beyond the bound are dropped.
///
/// # Errors
///
/// Returns [`UnrollError::TooManyStates`] when the automaton grows beyond
/// `max_states`, or [`UnrollError::EmptyLanguage`] when nothing survives the
/// truncation.
pub fn unroll_grammar_to_fsa(
    grammar: &Grammar,
    max_depth: usize,
    max_states: usize,
) -> Result<Fsa, UnrollError> {
    let mut unroller = Unroller {
        grammar,
        states: vec![TmpState::default(), TmpState::default()],
        max_states,
    };
    unroller.compile_rule(grammar.root(), 0, 1, max_depth)?;
    unroller.states[1].is_final = true;
    let fsa = unroller.finalize();
    if !fsa.has_reachable_final_state() {
        return Err(UnrollError::EmptyLanguage { max_depth });
    }
    Ok(fsa)
}

#[derive(Debug, Default, Clone)]
struct TmpState {
    byte_edges: Vec<(ByteRange, usize)>,
    eps_edges: Vec<usize>,
    is_final: bool,
}

struct Unroller<'a> {
    grammar: &'a Grammar,
    states: Vec<TmpState>,
    max_states: usize,
}

impl<'a> Unroller<'a> {
    fn new_state(&mut self) -> Result<usize, UnrollError> {
        if self.states.len() >= self.max_states {
            return Err(UnrollError::TooManyStates {
                max_states: self.max_states,
            });
        }
        self.states.push(TmpState::default());
        Ok(self.states.len() - 1)
    }

    fn epsilon(&mut self, from: usize, to: usize) {
        self.states[from].eps_edges.push(to);
    }

    fn compile_rule(
        &mut self,
        rule: RuleId,
        from: usize,
        to: usize,
        depth: usize,
    ) -> Result<(), UnrollError> {
        if depth == 0 {
            // Truncate: this branch contributes nothing.
            return Ok(());
        }
        let body = self.grammar.rule(rule).body.clone();
        self.compile_expr(&body, from, to, depth)
    }

    fn compile_expr(
        &mut self,
        expr: &GrammarExpr,
        from: usize,
        to: usize,
        depth: usize,
    ) -> Result<(), UnrollError> {
        match expr {
            GrammarExpr::Empty => self.epsilon(from, to),
            GrammarExpr::Literal(bytes) => {
                if bytes.is_empty() {
                    self.epsilon(from, to);
                    return Ok(());
                }
                let mut cur = from;
                for (i, &b) in bytes.iter().enumerate() {
                    let next = if i + 1 == bytes.len() {
                        to
                    } else {
                        self.new_state()?
                    };
                    self.states[cur]
                        .byte_edges
                        .push((ByteRange::new(b, b), next));
                    cur = next;
                }
            }
            GrammarExpr::CharClass(cc) => {
                for range in cc.normalized_ranges() {
                    for seq in utf8_sequences(range.start as u32, range.end as u32) {
                        let mut cur = from;
                        for (i, br) in seq.ranges.iter().enumerate() {
                            let next = if i + 1 == seq.ranges.len() {
                                to
                            } else {
                                self.new_state()?
                            };
                            self.states[cur].byte_edges.push((*br, next));
                            cur = next;
                        }
                    }
                }
            }
            GrammarExpr::ByteClass(bc) => {
                for (lo, hi) in bc.normalized_ranges() {
                    self.states[from]
                        .byte_edges
                        .push((ByteRange::new(lo, hi), to));
                }
            }
            GrammarExpr::RuleRef(rule) => {
                self.compile_rule(*rule, from, to, depth - 1)?;
            }
            GrammarExpr::Sequence(items) => {
                if items.is_empty() {
                    self.epsilon(from, to);
                    return Ok(());
                }
                let mut cur = from;
                for (i, item) in items.iter().enumerate() {
                    let next = if i + 1 == items.len() {
                        to
                    } else {
                        self.new_state()?
                    };
                    self.compile_expr(item, cur, next, depth)?;
                    cur = next;
                }
            }
            GrammarExpr::Choice(items) => {
                if items.is_empty() {
                    self.epsilon(from, to);
                    return Ok(());
                }
                for item in items {
                    self.compile_expr(item, from, to, depth)?;
                }
            }
            GrammarExpr::Repeat {
                expr: inner,
                min,
                max,
            } => {
                let mut cur = from;
                for _ in 0..*min {
                    let next = self.new_state()?;
                    self.compile_expr(inner, cur, next, depth)?;
                    cur = next;
                }
                match max {
                    None => {
                        let loop_entry = self.new_state()?;
                        self.epsilon(cur, loop_entry);
                        let loop_exit = self.new_state()?;
                        self.compile_expr(inner, loop_entry, loop_exit, depth)?;
                        self.epsilon(loop_exit, loop_entry);
                        self.epsilon(loop_entry, to);
                    }
                    Some(max) => {
                        let optional = max.saturating_sub(*min);
                        for _ in 0..optional {
                            let next = self.new_state()?;
                            self.compile_expr(inner, cur, next, depth)?;
                            self.epsilon(cur, to);
                            cur = next;
                        }
                        self.epsilon(cur, to);
                    }
                }
            }
        }
        Ok(())
    }

    /// Eliminates epsilon edges and produces the final [`Fsa`].
    fn finalize(&self) -> Fsa {
        let n = self.states.len();
        let mut fsa = Fsa::new();
        let ids: Vec<StateId> = (0..n)
            .map(|i| if i == 0 { fsa.start() } else { fsa.add_state() })
            .collect();
        let mut closure_cache: HashMap<usize, (Vec<(ByteRange, usize)>, bool)> = HashMap::new();
        for i in 0..n {
            let (edges, is_final) = closure_cache.entry(i).or_insert_with(|| {
                let mut visited = vec![false; n];
                let mut stack = vec![i];
                visited[i] = true;
                let mut edges = Vec::new();
                let mut is_final = false;
                while let Some(cur) = stack.pop() {
                    if self.states[cur].is_final {
                        is_final = true;
                    }
                    edges.extend(self.states[cur].byte_edges.iter().copied());
                    for &next in &self.states[cur].eps_edges {
                        if !visited[next] {
                            visited[next] = true;
                            stack.push(next);
                        }
                    }
                }
                (edges, is_final)
            });
            for (range, target) in edges.iter() {
                fsa.add_edge(ids[i], *range, ids[*target]);
            }
            fsa.set_final(ids[i], *is_final);
        }
        fsa
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xg_grammar::parse_ebnf;

    #[test]
    fn non_recursive_grammar_unrolls() {
        let g = parse_ebnf(r#"root ::= "a" [0-9]{1,3} ("x" | "y")"#, "root").unwrap();
        let fsa = unroll_grammar_to_fsa(&g, 8, 10_000).unwrap();
        assert!(fsa.accepts(b"a1x"));
        assert!(fsa.accepts(b"a123y"));
        assert!(!fsa.accepts(b"a1234x"));
        assert!(!fsa.accepts(b"ax"));
    }

    #[test]
    fn star_repetition_is_a_loop_not_recursion() {
        let g = parse_ebnf(r#"root ::= "[" [a-z]* "]""#, "root").unwrap();
        let fsa = unroll_grammar_to_fsa(&g, 2, 10_000).unwrap();
        assert!(fsa.accepts(b"[]"));
        assert!(fsa.accepts(b"[abcdefghijklmnop]"));
        assert!(!fsa.accepts(b"[abc"));
    }

    #[test]
    fn bounded_rule_nesting_unrolls() {
        let g = parse_ebnf(
            r#"
            root ::= pair
            pair ::= "(" inner ")"
            inner ::= [0-9]+
            "#,
            "root",
        )
        .unwrap();
        let fsa = unroll_grammar_to_fsa(&g, 4, 10_000).unwrap();
        assert!(fsa.accepts(b"(42)"));
        assert!(!fsa.accepts(b"()"));
    }

    #[test]
    fn recursion_is_truncated_at_the_depth_bound() {
        let g = parse_ebnf(
            r#"
            root ::= value
            value ::= "[" value "]" | [0-9]
            "#,
            "root",
        )
        .unwrap();
        let fsa = unroll_grammar_to_fsa(&g, 4, 1_000_000).unwrap();
        assert!(fsa.accepts(b"7"));
        assert!(fsa.accepts(b"[7]"));
        assert!(fsa.accepts(b"[[7]]"));
        // Nesting deeper than the bound is not representable.
        assert!(!fsa.accepts(b"[[[[7]]]]"));
    }

    #[test]
    fn grammar_recursion_detection() {
        let recursive = parse_ebnf(
            r#"
            root ::= value
            value ::= "[" value "]" | [0-9]
            "#,
            "root",
        )
        .unwrap();
        assert!(grammar_is_recursive(&recursive));
        let flat = parse_ebnf(
            r#"
            root ::= item ("," item)*
            item ::= [0-9]+
            "#,
            "root",
        )
        .unwrap();
        assert!(!grammar_is_recursive(&flat));
    }

    #[test]
    fn state_budget_is_enforced() {
        let g = parse_ebnf(r#"root ::= [a-z]{1,200}"#, "root").unwrap();
        let err = unroll_grammar_to_fsa(&g, 4, 16).unwrap_err();
        assert!(matches!(err, UnrollError::TooManyStates { .. }));
    }

    #[test]
    fn empty_language_after_truncation_is_an_error() {
        // Every sentence requires at least three levels of nesting.
        let g = parse_ebnf(
            r#"
            root ::= a
            a ::= "(" b ")"
            b ::= "[" c "]"
            c ::= [0-9]
            "#,
            "root",
        )
        .unwrap();
        let err = unroll_grammar_to_fsa(&g, 2, 10_000).unwrap_err();
        assert!(matches!(err, UnrollError::EmptyLanguage { .. }));
    }
}
