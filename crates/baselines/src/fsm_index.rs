//! Outlines-style FSM backend: lazy DFA over the unrolled grammar plus a
//! memoized per-state token index.
//!
//! Outlines (Willard & Louf, 2023) compiles the structure into a finite-state
//! machine and precomputes, for every FSM state, the set of vocabulary tokens
//! whose characters can be consumed from that state. Mask generation then is
//! a dictionary lookup. The approach is fast once a state's index exists, but
//!
//! * context-free grammars have to be approximated by depth-bounded
//!   unrolling (see [`crate::unroll_grammar_to_fsa`]), which blows up the
//!   number of states for recursive structures, and
//! * every *newly visited* DFA state pays a full vocabulary scan, which is
//!   exactly the per-token cost the paper measures for CFG workloads.

use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::sync::Arc;

use std::sync::Mutex;
use xg_automata::fsa::{Fsa, StateId};
use xg_core::TokenBitmask;
use xg_grammar::Grammar;
use xg_tokenizer::{TokenId, Vocabulary};

use crate::regex_unroll::unroll_grammar_to_fsa;
use crate::{BackendError, BackendSession, CompiledConstraint, ConstrainedBackend};

/// Default recursion-unrolling depth (enough for the nesting present in the
/// evaluation datasets).
pub const DEFAULT_UNROLL_DEPTH: usize = 8;
/// Default state budget for the unrolled automaton.
pub const DEFAULT_MAX_STATES: usize = 200_000;

/// Outlines-style FSM-index backend.
#[derive(Debug)]
pub struct FsmIndexBackend {
    vocab: Arc<Vocabulary>,
    unroll_depth: usize,
    max_states: usize,
}

impl FsmIndexBackend {
    /// Creates the backend with default unrolling limits.
    pub fn new(vocab: Arc<Vocabulary>) -> Self {
        FsmIndexBackend {
            vocab,
            unroll_depth: DEFAULT_UNROLL_DEPTH,
            max_states: DEFAULT_MAX_STATES,
        }
    }

    /// Creates the backend with explicit unrolling limits.
    pub fn with_limits(vocab: Arc<Vocabulary>, unroll_depth: usize, max_states: usize) -> Self {
        FsmIndexBackend {
            vocab,
            unroll_depth,
            max_states,
        }
    }
}

impl ConstrainedBackend for FsmIndexBackend {
    fn name(&self) -> &'static str {
        "Outlines (FSM index)"
    }

    fn vocabulary(&self) -> &Arc<Vocabulary> {
        &self.vocab
    }

    fn compile(&self, grammar: &Grammar) -> Result<Arc<dyn CompiledConstraint>, BackendError> {
        let fsa =
            unroll_grammar_to_fsa(grammar, self.unroll_depth, self.max_states).map_err(|e| {
                BackendError::UnsupportedGrammar {
                    backend: "Outlines (FSM index)",
                    reason: e.to_string(),
                }
            })?;
        Ok(Arc::new(FsmCompiled {
            shared: Arc::new(FsmShared {
                fsa,
                vocab: Arc::clone(&self.vocab),
                index: Mutex::new(HashMap::new()),
            }),
        }))
    }
}

/// A DFA state: a set of NFA states.
type DfaState = BTreeSet<StateId>;

struct FsmShared {
    fsa: Fsa,
    vocab: Arc<Vocabulary>,
    /// Memoized per-DFA-state token index: allowed tokens and, per allowed
    /// token, the DFA state reached after consuming it.
    #[allow(clippy::type_complexity)]
    index: Mutex<HashMap<DfaState, Arc<StateIndex>>>,
}

struct StateIndex {
    allowed: Vec<(TokenId, DfaState)>,
    can_terminate: bool,
}

impl fmt::Debug for FsmShared {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FsmShared")
            .field("nfa_states", &self.fsa.len())
            .field(
                "indexed_states",
                &self.index.lock().unwrap_or_else(|e| e.into_inner()).len(),
            )
            .finish()
    }
}

impl FsmShared {
    fn start_state(&self) -> DfaState {
        let mut s = BTreeSet::new();
        s.insert(self.fsa.start());
        s
    }

    fn state_index(&self, state: &DfaState) -> Arc<StateIndex> {
        if let Some(hit) = self
            .index
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(state)
        {
            return Arc::clone(hit);
        }
        // Full vocabulary scan for this state (the expensive part of the
        // Outlines approach).
        let mut allowed = Vec::new();
        for (token, bytes) in self.vocab.iter() {
            if self.vocab.is_special(token) {
                continue;
            }
            let mut cur = state.clone();
            let mut ok = true;
            for &b in bytes {
                cur = self.fsa.step(&cur, b);
                if cur.is_empty() {
                    ok = false;
                    break;
                }
            }
            if ok {
                allowed.push((token, cur));
            }
        }
        let can_terminate = state.iter().any(|s| self.fsa.is_final(*s));
        let entry = Arc::new(StateIndex {
            allowed,
            can_terminate,
        });
        self.index
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(state.clone(), Arc::clone(&entry));
        entry
    }
}

#[derive(Debug)]
struct FsmCompiled {
    shared: Arc<FsmShared>,
}

impl CompiledConstraint for FsmCompiled {
    fn new_session(&self) -> Box<dyn BackendSession> {
        Box::new(FsmSession {
            shared: Arc::clone(&self.shared),
            state: self.shared.start_state(),
        })
    }
}

#[derive(Debug)]
struct FsmSession {
    shared: Arc<FsmShared>,
    state: DfaState,
}

impl BackendSession for FsmSession {
    fn fill_mask(&mut self, mask: &mut TokenBitmask) {
        mask.reject_all();
        let index = self.shared.state_index(&self.state);
        for (token, _) in &index.allowed {
            mask.allow(*token);
        }
        if index.can_terminate {
            if let Some(eos) = self.shared.vocab.eos() {
                mask.allow(eos);
            }
        }
    }

    fn accept_token(&mut self, token: TokenId) -> bool {
        if Some(token) == self.shared.vocab.eos() {
            return self.shared.state_index(&self.state).can_terminate;
        }
        if self.shared.vocab.is_special(token) {
            return false;
        }
        let index = self.shared.state_index(&self.state);
        match index.allowed.iter().find(|(t, _)| *t == token) {
            Some((_, next)) => {
                self.state = next.clone();
                true
            }
            None => false,
        }
    }

    fn can_terminate(&mut self) -> bool {
        self.shared.state_index(&self.state).can_terminate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{drive_session_bytes, small_vocab};

    #[test]
    fn fsm_backend_enforces_flat_structures() {
        let vocab = small_vocab();
        let backend = FsmIndexBackend::new(Arc::clone(&vocab));
        let grammar =
            xg_grammar::parse_ebnf(r#"root ::= "[" [0-9]+ ("," [0-9]+)* "]""#, "root").unwrap();
        let compiled = backend.compile(&grammar).unwrap();
        let mut session = compiled.new_session();
        assert!(drive_session_bytes(&vocab, session.as_mut(), b"[1,23,4]"));
        assert!(session.can_terminate());
    }

    #[test]
    fn fsm_backend_masks_match_xgrammar_for_regular_grammars() {
        let vocab = small_vocab();
        let grammar = xg_grammar::parse_ebnf(r#"root ::= "id-" [0-9]{3}"#, "root").unwrap();
        let fsm = FsmIndexBackend::new(Arc::clone(&vocab));
        let xg = crate::XGrammarBackend::new(Arc::clone(&vocab));
        let mut fsm_session = fsm.compile(&grammar).unwrap().new_session();
        let mut xg_session = xg.compile(&grammar).unwrap().new_session();
        let mut a = TokenBitmask::new_all_rejected(vocab.len());
        let mut b = TokenBitmask::new_all_rejected(vocab.len());
        fsm_session.fill_mask(&mut a);
        xg_session.fill_mask(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn recursive_grammar_is_depth_limited_but_usable() {
        let vocab = small_vocab();
        let backend = FsmIndexBackend::with_limits(Arc::clone(&vocab), 6, 500_000);
        let grammar = xg_grammar::parse_ebnf(
            r#"
            root ::= value
            value ::= "[" (value ("," value)*)? "]" | [0-9]+
            "#,
            "root",
        )
        .unwrap();
        let compiled = backend.compile(&grammar).unwrap();
        let mut session = compiled.new_session();
        assert!(drive_session_bytes(
            &vocab,
            session.as_mut(),
            b"[1,[2,[3]]]"
        ));
        assert!(session.can_terminate());
        // Nesting beyond the unrolling depth is not representable: the mask
        // at some point refuses to open yet another bracket.
        let mut deep_session = compiled.new_session();
        assert!(!drive_session_bytes(
            &vocab,
            deep_session.as_mut(),
            b"[[[[[[[[[[1]]]]]]]]]]"
        ));
    }

    #[test]
    fn state_budget_violation_is_reported() {
        let vocab = small_vocab();
        let backend = FsmIndexBackend::with_limits(Arc::clone(&vocab), 10, 64);
        let err = backend
            .compile(&xg_grammar::builtin::json_grammar())
            .unwrap_err();
        assert!(matches!(err, BackendError::UnsupportedGrammar { .. }));
    }
}
