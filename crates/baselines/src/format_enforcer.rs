//! lm-format-enforcer-style backend: per-step character walking, regular
//! structures only.
//!
//! lm-format-enforcer keeps a character-level automaton for the (regex-
//! expressible) structure and, at every decoding step, walks each vocabulary
//! token's characters through it from the current state — organized as a
//! character trie so shared prefixes are walked once. There is no
//! preprocessing phase and no support for context-free grammars; recursive
//! grammars are rejected at compile time, matching the original ("a
//! regex-based method that does not support CFG", paper §4.1).

use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

use xg_automata::fsa::{Fsa, StateId};
use xg_core::TokenBitmask;
use xg_grammar::Grammar;
use xg_tokenizer::{TokenId, Vocabulary};

use crate::regex_unroll::{grammar_is_recursive, unroll_grammar_to_fsa};
use crate::{BackendError, BackendSession, CompiledConstraint, ConstrainedBackend};

/// lm-format-enforcer-style backend (character trie walking, regex only).
#[derive(Debug)]
pub struct FormatEnforcerBackend {
    vocab: Arc<Vocabulary>,
}

impl FormatEnforcerBackend {
    /// Creates the backend for a vocabulary.
    pub fn new(vocab: Arc<Vocabulary>) -> Self {
        FormatEnforcerBackend { vocab }
    }
}

impl ConstrainedBackend for FormatEnforcerBackend {
    fn name(&self) -> &'static str {
        "lm-format-enforcer (char trie)"
    }

    fn vocabulary(&self) -> &Arc<Vocabulary> {
        &self.vocab
    }

    fn compile(&self, grammar: &Grammar) -> Result<Arc<dyn CompiledConstraint>, BackendError> {
        if grammar_is_recursive(grammar) {
            return Err(BackendError::UnsupportedGrammar {
                backend: "lm-format-enforcer (char trie)",
                reason: "recursive context-free grammars cannot be expressed as a regex".into(),
            });
        }
        let fsa = unroll_grammar_to_fsa(grammar, 64, 500_000).map_err(|e| {
            BackendError::UnsupportedGrammar {
                backend: "lm-format-enforcer (char trie)",
                reason: e.to_string(),
            }
        })?;
        Ok(Arc::new(EnforcerCompiled {
            shared: Arc::new(EnforcerShared {
                fsa,
                trie: TokenTrie::build(&self.vocab),
                vocab: Arc::clone(&self.vocab),
            }),
        }))
    }
}

/// A byte trie over the vocabulary: each node stores its children and the
/// tokens that end exactly at that node.
#[derive(Debug)]
pub(crate) struct TokenTrie {
    nodes: Vec<TrieNode>,
}

#[derive(Debug, Default)]
struct TrieNode {
    children: Vec<(u8, u32)>,
    terminal_tokens: Vec<TokenId>,
}

impl TokenTrie {
    pub(crate) fn build(vocab: &Vocabulary) -> TokenTrie {
        let mut trie = TokenTrie {
            nodes: vec![TrieNode::default()],
        };
        for (token, bytes) in vocab.iter() {
            if vocab.is_special(token) {
                continue;
            }
            let mut cur = 0u32;
            for &b in bytes {
                cur = match trie.nodes[cur as usize]
                    .children
                    .iter()
                    .find(|(cb, _)| *cb == b)
                {
                    Some((_, child)) => *child,
                    None => {
                        let idx = trie.nodes.len() as u32;
                        trie.nodes.push(TrieNode::default());
                        trie.nodes[cur as usize].children.push((b, idx));
                        idx
                    }
                };
            }
            trie.nodes[cur as usize].terminal_tokens.push(token);
        }
        trie
    }

    /// Number of trie nodes (for statistics).
    pub(crate) fn len(&self) -> usize {
        self.nodes.len()
    }
}

struct EnforcerShared {
    fsa: Fsa,
    trie: TokenTrie,
    vocab: Arc<Vocabulary>,
}

impl fmt::Debug for EnforcerShared {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EnforcerShared")
            .field("fsa_states", &self.fsa.len())
            .field("trie_nodes", &self.trie.len())
            .finish()
    }
}

#[derive(Debug)]
struct EnforcerCompiled {
    shared: Arc<EnforcerShared>,
}

impl CompiledConstraint for EnforcerCompiled {
    fn new_session(&self) -> Box<dyn BackendSession> {
        let mut state = BTreeSet::new();
        state.insert(self.shared.fsa.start());
        Box::new(EnforcerSession {
            shared: Arc::clone(&self.shared),
            state,
        })
    }
}

#[derive(Debug)]
struct EnforcerSession {
    shared: Arc<EnforcerShared>,
    state: BTreeSet<StateId>,
}

impl EnforcerSession {
    /// Depth-first walk of the token trie, carrying the automaton state set;
    /// every terminal token reached with a non-empty state set is allowed.
    fn walk(&self, trie_node: u32, states: &BTreeSet<StateId>, mask: &mut TokenBitmask) {
        let node = &self.shared.trie.nodes[trie_node as usize];
        for &token in &node.terminal_tokens {
            mask.allow(token);
        }
        for &(byte, child) in &node.children {
            let next = self.shared.fsa.step(states, byte);
            if !next.is_empty() {
                self.walk(child, &next, mask);
            }
        }
    }
}

impl BackendSession for EnforcerSession {
    fn fill_mask(&mut self, mask: &mut TokenBitmask) {
        mask.reject_all();
        // Skip the terminal tokens of the trie root (the empty string is not
        // a token) by walking children only; the root has no terminal tokens
        // in practice.
        self.walk(0, &self.state.clone(), mask);
        if self.can_terminate() {
            if let Some(eos) = self.shared.vocab.eos() {
                mask.allow(eos);
            }
        }
    }

    fn accept_token(&mut self, token: TokenId) -> bool {
        if Some(token) == self.shared.vocab.eos() {
            return self.can_terminate();
        }
        if self.shared.vocab.is_special(token) {
            return false;
        }
        let mut states = self.state.clone();
        for &b in self.shared.vocab.token_bytes(token) {
            states = self.shared.fsa.step(&states, b);
            if states.is_empty() {
                return false;
            }
        }
        self.state = states;
        true
    }

    fn can_terminate(&mut self) -> bool {
        self.state.iter().any(|s| self.shared.fsa.is_final(*s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{drive_session_bytes, small_vocab};

    #[test]
    fn enforcer_rejects_recursive_grammars() {
        let vocab = small_vocab();
        let backend = FormatEnforcerBackend::new(vocab);
        let err = backend
            .compile(&xg_grammar::builtin::json_grammar())
            .unwrap_err();
        assert!(matches!(err, BackendError::UnsupportedGrammar { .. }));
    }

    #[test]
    fn enforcer_enforces_regular_structures() {
        let vocab = small_vocab();
        let backend = FormatEnforcerBackend::new(Arc::clone(&vocab));
        let grammar = xg_grammar::parse_ebnf(
            r#"root ::= "{\"id\": " [0-9]+ ", \"ok\": " ("true" | "false") "}""#,
            "root",
        )
        .unwrap();
        let compiled = backend.compile(&grammar).unwrap();
        let mut session = compiled.new_session();
        assert!(drive_session_bytes(
            &vocab,
            session.as_mut(),
            br#"{"id": 17, "ok": true}"#
        ));
        assert!(session.can_terminate());
    }

    #[test]
    fn enforcer_masks_match_xgrammar_for_regular_grammars() {
        let vocab = small_vocab();
        let grammar = xg_grammar::parse_ebnf(r#"root ::= "v" [0-9]{2}"#, "root").unwrap();
        let enforcer = FormatEnforcerBackend::new(Arc::clone(&vocab));
        let xg = crate::XGrammarBackend::new(Arc::clone(&vocab));
        let mut a_session = enforcer.compile(&grammar).unwrap().new_session();
        let mut b_session = xg.compile(&grammar).unwrap().new_session();
        let mut a = TokenBitmask::new_all_rejected(vocab.len());
        let mut b = TokenBitmask::new_all_rejected(vocab.len());
        a_session.fill_mask(&mut a);
        b_session.fill_mask(&mut b);
        assert_eq!(a, b);

        // Advance both with a valid token and compare again.
        let v = vocab.iter().find(|(_, t)| *t == b"v").unwrap().0;
        assert!(a_session.accept_token(v));
        assert!(b_session.accept_token(v));
        a_session.fill_mask(&mut a);
        b_session.fill_mask(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn token_trie_shares_prefixes() {
        let vocab = small_vocab();
        let trie = TokenTrie::build(&vocab);
        // The trie must be smaller than the sum of token lengths (prefixes
        // are shared) but larger than the number of tokens.
        let total_bytes: usize = vocab.iter().map(|(_, t)| t.len()).sum();
        assert!(trie.len() < total_bytes);
        assert!(trie.len() > 256);
    }
}
