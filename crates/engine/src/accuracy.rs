//! Downstream-task accuracy experiment (paper §4.4, Table 4): syntactic
//! correctness of function-calling (JSON Schema) and XML code generation,
//! with and without grammar constraints.

use std::sync::Arc;

use xg_baselines::{ConstrainedBackend, XGrammarBackend};
use xg_datasets::{json_mode_eval_like, xml_tasks};
use xg_grammar::Grammar;
use xg_tokenizer::Vocabulary;

use crate::engine::{EngineRequest, ExecutionMode, LaneConstraint, ServingEngine};
use crate::llm::LlmBehavior;
use crate::profiles::ModelProfile;

/// Result of the accuracy experiment for one task family.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccuracyResult {
    /// Number of evaluated requests.
    pub total: usize,
    /// Syntactically valid outputs without constrained decoding.
    pub valid_unconstrained: usize,
    /// Syntactically valid outputs with XGrammar constraints.
    pub valid_constrained: usize,
}

impl AccuracyResult {
    /// Accuracy without constraints, in [0, 1].
    pub fn unconstrained_accuracy(&self) -> f64 {
        self.valid_unconstrained as f64 / self.total.max(1) as f64
    }

    /// Accuracy with constraints, in [0, 1].
    pub fn constrained_accuracy(&self) -> f64 {
        self.valid_constrained as f64 / self.total.max(1) as f64
    }
}

/// The two structured-generation tasks of Table 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccuracyTask {
    /// Function calling: JSON constrained by a per-request schema.
    FunctionCalling,
    /// XML code generation constrained by the XML grammar.
    XmlGeneration,
}

fn is_valid_json(bytes: &[u8]) -> bool {
    serde_json::from_slice::<serde_json::Value>(bytes).is_ok()
}

/// Minimal well-formedness check for XML output: non-empty, starts with `<`,
/// and all tags are properly nested and closed.
fn is_valid_xml(bytes: &[u8]) -> bool {
    let text = match std::str::from_utf8(bytes) {
        Ok(t) => t.trim(),
        Err(_) => return false,
    };
    if !text.starts_with('<') || text.is_empty() {
        return false;
    }
    let mut stack: Vec<String> = Vec::new();
    let mut rest = text;
    while let Some(open) = rest.find('<') {
        let Some(close) = rest[open..].find('>') else {
            return false;
        };
        let tag = &rest[open + 1..open + close];
        rest = &rest[open + close + 1..];
        if tag.starts_with("!--") || tag.starts_with("?") {
            continue;
        }
        if let Some(name) = tag.strip_prefix('/') {
            match stack.pop() {
                Some(expected) if expected == name.trim() => {}
                _ => return false,
            }
        } else if tag.ends_with('/') {
            // self-closing
        } else {
            let name = tag.split_whitespace().next().unwrap_or("");
            if name.is_empty() {
                return false;
            }
            stack.push(name.to_string());
        }
    }
    stack.is_empty() && !rest.contains('>')
}

/// Runs the Table 4 experiment for one task family over `count` requests.
pub fn run_accuracy_experiment(
    vocab: Arc<Vocabulary>,
    task: AccuracyTask,
    count: usize,
    behavior: LlmBehavior,
) -> AccuracyResult {
    let backend: Arc<dyn ConstrainedBackend> = Arc::new(XGrammarBackend::new(Arc::clone(&vocab)));
    // Keep the simulated GPU almost free so the experiment is fast; accuracy
    // does not depend on latency.
    let profile = ModelProfile::llama31_8b_h100().scaled(0.0);
    let engine = ServingEngine::with_llm_behavior(
        Arc::clone(&backend),
        profile,
        ExecutionMode::Overlapped,
        behavior,
    );

    let cases: Vec<(Option<Grammar>, Vec<u8>, bool)> = match task {
        AccuracyTask::FunctionCalling => json_mode_eval_like(count, 0xACC)
            .into_iter()
            .map(|t| {
                let grammar =
                    xg_grammar::json_schema_to_grammar(&t.schema).expect("schema converts");
                (Some(grammar), t.reference, true)
            })
            .collect(),
        AccuracyTask::XmlGeneration => xml_tasks(count, 0xACC)
            .into_iter()
            .map(|t| (Some(xg_grammar::builtin::xml_grammar()), t.reference, false))
            .collect(),
    };

    let mut result = AccuracyResult {
        total: cases.len(),
        valid_unconstrained: 0,
        valid_constrained: 0,
    };
    for (grammar, reference, is_json) in cases {
        let validate = |bytes: &[u8]| {
            if is_json {
                is_valid_json(bytes)
            } else {
                is_valid_xml(bytes)
            }
        };
        // Unconstrained run.
        let unconstrained = EngineRequest {
            constraint: LaneConstraint::Unconstrained,
            prompt_tokens: 139,
            reference: reference.clone(),
            max_tokens: 512,
            seed: 0,
        };
        let (results, _) = engine
            .run_batch(std::slice::from_ref(&unconstrained))
            .expect("unconstrained run cannot fail");
        if validate(&results[0].output) {
            result.valid_unconstrained += 1;
        }
        // Constrained run.
        let constrained = EngineRequest {
            constraint: grammar.into(),
            prompt_tokens: 139,
            reference,
            max_tokens: 512,
            seed: 0,
        };
        let (results, _) = engine
            .run_batch(std::slice::from_ref(&constrained))
            .expect("constrained run compiles");
        if results[0].completed && validate(&results[0].output) {
            result.valid_constrained += 1;
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use xg_tokenizer::test_vocabulary;

    #[test]
    fn xml_validator_accepts_and_rejects() {
        assert!(is_valid_xml(b"<a><b x=\"1\">hi</b><c/></a>"));
        assert!(!is_valid_xml(b"<a><b></a>"));
        assert!(!is_valid_xml(b"plain text"));
        assert!(!is_valid_xml(b"<a>"));
    }

    #[test]
    fn constrained_function_calling_reaches_full_validity() {
        let vocab = Arc::new(test_vocabulary(2000));
        let result = run_accuracy_experiment(
            vocab,
            AccuracyTask::FunctionCalling,
            6,
            LlmBehavior {
                prose_probability: 0.5,
                type_error_probability: 0.4,
                seed: 9,
            },
        );
        assert_eq!(result.total, 6);
        assert_eq!(
            result.valid_constrained, 6,
            "constrained outputs must all parse"
        );
        assert!(result.valid_unconstrained < result.valid_constrained);
    }

    #[test]
    fn constrained_xml_generation_is_well_formed() {
        let vocab = Arc::new(test_vocabulary(2000));
        let result = run_accuracy_experiment(
            vocab,
            AccuracyTask::XmlGeneration,
            4,
            LlmBehavior {
                prose_probability: 0.6,
                type_error_probability: 0.0,
                seed: 10,
            },
        );
        assert_eq!(result.valid_constrained, result.total);
    }
}
