//! The simulated LLM serving engine: constrained batch decoding with
//! CPU/GPU overlap (paper §3.5 and §4.2).
//!
//! Two serving paths share one per-lane decode step ([`crate::lane`]):
//!
//! * [`ServingEngine::run_batch`] — the public batch API, now a thin wrapper
//!   over the [`ContinuousScheduler`](crate::ContinuousScheduler): requests
//!   are submitted to the scheduler's queue, compiled on an admission
//!   worker, decoded in the persistent loop and collected when every lane
//!   has finished. Outputs are byte-identical to the fixed loop below.
//! * [`ServingEngine::run_batch_fixed`] — the original fixed-membership
//!   batch loop, kept as the *reference implementation* for differential
//!   testing: every lane joins at round 0, rounds run in lock-step, and the
//!   batch ends when the last lane finishes.
//!
//! Each decoding round of the fixed loop:
//!
//! 1. for every live request, the grammar backend produces a token mask
//!    (CPU work; the lanes are spread over scoped worker threads, see
//!    [`ServingEngine::with_mask_parallelism`]);
//! 2. the simulated GPU performs one decoding step for the whole batch
//!    (a calibrated busy-wait on a worker thread);
//! 3. the sampler picks each request's next token under its mask and the
//!    matchers advance.
//!
//! In **serial** mode steps 1 and 2 run one after the other; in
//! **overlapped** mode step 1 runs on the engine thread while step 2 runs
//! concurrently on the GPU thread, and the engine synchronizes before
//! sampling — the co-design of §3.5. Grammar preprocessing (compilation) is
//! likewise overlapped with prefill.
//!
//! With a [`JumpForwardPolicy`] other than `Off` (the default is now
//! [`JumpForwardPolicy::Engine`]), the loop additionally injects grammar-
//! *forced* text (paper Appendix B / Figure 11) at lane start and after
//! every accepted token: whenever the constraint admits exactly one
//! continuation, the engine emits it directly — re-tokenized against the
//! real vocabulary under the `Engine` policy — skipping both the mask and
//! the GPU step for those tokens. Forced tokens are accounted separately
//! ([`BatchMetrics::jump_forward_tokens`], [`BatchMetrics::forced_time`]) so
//! TPOT stays honest.

use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use crate::lane::{ForcedContext, Lane};
use crate::llm::{LlmBehavior, SimulatedLlm};
use crate::profiles::ModelProfile;
use crate::scheduler::SchedulerConfig;
use xg_baselines::{BackendError, BackendSession, ConstrainedBackend};
use xg_core::{GrammarCacheStats, TokenBitmask};
use xg_grammar::{Grammar, StructuralTag};
use xg_tokenizer::{SortedVocabulary, TokenId};

/// Whether grammar work is overlapped with the simulated GPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutionMode {
    /// Mask generation, then GPU step, sequentially.
    Serial,
    /// Mask generation concurrent with the GPU step (paper §3.5). In the
    /// continuous scheduler this additionally double-buffers: a lane's mask
    /// for step *t+1* is dispatched to the mask workers as soon as its step
    /// *t* token is accepted, so mask fill overlaps both the rest of the
    /// sampling phase and the next GPU step.
    Overlapped,
}

/// How the serving engine uses jump-forward decoding (paper Appendix B and
/// Figure 11): whenever a lane's constraint forces a unique continuation
/// (schema punctuation, forced keys, tag remainders), the engine can emit it
/// directly instead of paying one GPU decoding step per token.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum JumpForwardPolicy {
    /// Never jump forward: every output token is sampled under its mask (the
    /// pre-jump-forward serving path, kept selectable for comparisons via
    /// [`ServingEngine::with_jump_forward`]).
    Off,
    /// Matcher-level jump-forward: forced bytes are accepted through the
    /// lane's matcher as **one raw byte run** (a single rollback unit, no
    /// re-tokenization). The bytes land in the output and skip GPU steps,
    /// but are not accounted as tokens — so on a lane that is cut short by
    /// `max_tokens`, the forced bytes already injected can make the
    /// truncated output longer than the `Off` path's (byte parity is
    /// guaranteed for lanes that *complete*; `Engine` additionally never
    /// injects past the cap).
    Matcher,
    /// Engine-level jump-forward: forced bytes are re-tokenized against the
    /// real vocabulary (longest-prefix token cover, falling back to the
    /// byte-level tokens) and injected **token by token** without sampling
    /// or mask generation. Each injected token is a rollback unit, exactly
    /// as if it had been sampled — the serving path of Figure 11. This is
    /// the default policy: the differential suite
    /// (`tests/engine_jump_forward.rs`) proves it changes nothing but speed.
    #[default]
    Engine,
}

/// Result of one speculative draft verification
/// ([`ServingEngine::verify_draft`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DraftVerification {
    /// Number of draft tokens accepted — the longest prefix of the draft the
    /// constraint admits from the session's position (an accepted EOS
    /// counts).
    pub accepted: usize,
    /// The accepted prefix's bytes in order, byte-identical to accepting the
    /// same tokens one by one.
    pub bytes: Vec<u8>,
}

/// How one lane of a batch is constrained.
#[derive(Debug, Clone, Default)]
pub enum LaneConstraint {
    /// No constraint: plain sampling (prose lanes).
    #[default]
    Unconstrained,
    /// Fully constrained by a grammar from the first token.
    Grammar(Grammar),
    /// Structural tags: free text passes through unconstrained, tagged
    /// segments (tool calls) are grammar-constrained.
    StructuralTag(StructuralTag),
}

impl LaneConstraint {
    /// Returns `true` if the lane needs a backend session (and token masks).
    pub fn is_constrained(&self) -> bool {
        !matches!(self, LaneConstraint::Unconstrained)
    }

    /// Compiles the lane's constraint through `backend`, returning `None` for
    /// unconstrained lanes. This is the engine's *single* per-constraint-kind
    /// dispatch point: everything after construction — sessions, masks,
    /// token acceptance, jump-forward — flows through the constraint-agnostic
    /// [`BackendSession`] interface (backed by `xg-core`'s
    /// `ConstraintMatcher` trait objects in the XGrammar backend). The
    /// continuous scheduler calls it from its admission workers, off the
    /// decode hot path.
    ///
    /// # Errors
    ///
    /// Returns the backend's error if it cannot express the constraint.
    pub fn compile(
        &self,
        backend: &dyn ConstrainedBackend,
    ) -> Result<Option<Arc<dyn xg_baselines::CompiledConstraint>>, BackendError> {
        match self {
            LaneConstraint::Unconstrained => Ok(None),
            LaneConstraint::Grammar(grammar) => backend.compile(grammar).map(Some),
            LaneConstraint::StructuralTag(tag) => backend.compile_structural(tag).map(Some),
        }
    }

    /// Probes whether `backend` already holds a compiled form of this
    /// constraint (compiled-grammar cache or structural-tag memo), without
    /// compiling anything. Unconstrained lanes report `true` — there is
    /// nothing to compile. Admission control uses this to tell cache-hit
    /// admissions (cheap, fast TTFT) from cold compiles.
    pub fn is_cached(&self, backend: &dyn ConstrainedBackend) -> bool {
        match self {
            LaneConstraint::Unconstrained => true,
            LaneConstraint::Grammar(grammar) => backend.is_cached(grammar),
            LaneConstraint::StructuralTag(tag) => backend.is_cached_structural(tag),
        }
    }
}

impl From<Grammar> for LaneConstraint {
    fn from(grammar: Grammar) -> Self {
        LaneConstraint::Grammar(grammar)
    }
}

impl From<StructuralTag> for LaneConstraint {
    fn from(tag: StructuralTag) -> Self {
        LaneConstraint::StructuralTag(tag)
    }
}

impl From<Option<Grammar>> for LaneConstraint {
    fn from(grammar: Option<Grammar>) -> Self {
        grammar.map_or(LaneConstraint::Unconstrained, LaneConstraint::Grammar)
    }
}

/// A single generation request.
#[derive(Debug, Clone)]
pub struct EngineRequest {
    /// The constraint applied to this request.
    pub constraint: LaneConstraint,
    /// Number of prompt tokens (drives simulated prefill time).
    pub prompt_tokens: usize,
    /// Reference output the simulated LLM tries to produce.
    pub reference: Vec<u8>,
    /// Hard cap on generated tokens.
    pub max_tokens: usize,
    /// Per-request seed for the simulated LLM's error injection. Part of the
    /// request (not derived from its batch position) so a request produces
    /// the same bytes whether it runs in a fixed batch or joins the
    /// continuous scheduler in any arrival order.
    pub seed: u64,
}

/// Per-request result.
#[derive(Debug, Clone)]
pub struct RequestResult {
    /// Generated text (sampled token bytes and jump-forward-forced bytes
    /// concatenated, in emission order).
    pub output: Vec<u8>,
    /// Number of *sampled* tokens (excluding EOS and tokens injected by
    /// jump-forward decoding) — the tokens that paid a GPU decoding step.
    pub tokens: usize,
    /// Tokens injected by engine-level jump-forward without sampling
    /// (always 0 unless the engine runs [`JumpForwardPolicy::Engine`]).
    pub jump_forward_tokens: usize,
    /// Forced text injected by jump-forward without sampling, counted in
    /// *bytes* of UTF-8 (the paper's "jump-forward characters" figure; ASCII
    /// key names make the two coincide). Under the `Matcher` policy the
    /// bytes are injected as raw runs, so this can be non-zero while
    /// [`jump_forward_tokens`](Self::jump_forward_tokens) is 0.
    pub jump_forward_chars: usize,
    /// Whether generation ended successfully: EOS was accepted (or an
    /// unconstrained lane emitted its full intention). `false` when the lane
    /// hit the token cap, had no allowed token, or violated its constraint.
    pub completed: bool,
}

impl RequestResult {
    /// An empty, uncompleted result — what a request that failed admission
    /// (its grammar did not compile) reports.
    pub(crate) fn failed() -> Self {
        RequestResult {
            output: Vec::new(),
            tokens: 0,
            jump_forward_tokens: 0,
            jump_forward_chars: 0,
            completed: false,
        }
    }
}

/// Batch-level metrics, the quantities reported in §4.2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchMetrics {
    /// Time to first token: prefill + grammar preprocessing (overlapped or
    /// not) + the first decoding round. Under the scheduler-backed
    /// [`ServingEngine::run_batch`] this is the earliest per-lane TTFT.
    pub ttft: Duration,
    /// Mean time per *sampled* output token across the batch. Time spent
    /// injecting grammar-forced text ([`forced_time`](Self::forced_time)) and
    /// the injected tokens themselves are both excluded, so jump-forward
    /// cannot dilute the per-token latency it reports — the speedup shows up
    /// as fewer sampled tokens and a shorter
    /// [`total_time`](Self::total_time), not as an artificially low TPOT.
    pub tpot: Duration,
    /// Total wall-clock time of the batch.
    pub total_time: Duration,
    /// Total *sampled* tokens (jump-forward-injected tokens are counted in
    /// [`jump_forward_tokens`](Self::jump_forward_tokens) instead).
    pub total_tokens: usize,
    /// Tokens injected without sampling by engine-level jump-forward,
    /// summed across lanes (0 unless the policy is
    /// [`JumpForwardPolicy::Engine`]).
    pub jump_forward_tokens: usize,
    /// Forced text injected without sampling, summed across lanes and
    /// counted in *bytes* of UTF-8 (`Matcher` and `Engine` policies; see
    /// [`RequestResult::jump_forward_chars`]).
    pub jump_forward_chars: usize,
    /// Wall-clock time spent finding, re-tokenizing and injecting forced
    /// text, summed over rounds. Excluded from [`tpot`](Self::tpot).
    pub forced_time: Duration,
    /// Wall-clock time spent in grammar mask generation, summed over rounds.
    /// With parallel lane fill this is the time the batch actually waited
    /// (in overlapped mode: the residual wait after the GPU step, i.e. the
    /// mask time the overlap failed to hide).
    pub mask_time: Duration,
    /// Per-worker busy time in grammar mask generation, summed across
    /// workers. Each worker measures its own wall clock, so on an
    /// oversubscribed machine this includes scheduler wait and can exceed
    /// true CPU time. With one worker this equals `mask_time` in serial
    /// mode.
    pub mask_cpu_time: Duration,
    /// Worker-thread ceiling for mask generation (each round additionally
    /// caps the workers by the number of still-live constrained lanes, so
    /// late rounds of a draining batch may use fewer).
    pub mask_threads: usize,
    /// Time spent in simulated GPU decoding (summed over rounds).
    pub gpu_time: Duration,
    /// Compiled-grammar cache activity during this batch: hit/miss deltas of
    /// *this engine's backend* (other backends sharing the same
    /// [`GrammarCache`](xg_core::GrammarCache) do not pollute them), the
    /// backing cache's eviction delta, and its end-of-batch byte/entry
    /// gauges. All zeros when the backend has no cache.
    pub cache: GrammarCacheStats,
}

impl BatchMetrics {
    /// Estimated wall-clock speedup of parallel mask generation: summed
    /// per-worker busy time divided by the wall-clock time the batch waited.
    /// An upper bound under contention (worker busy time includes scheduler
    /// wait — see [`mask_cpu_time`](Self::mask_cpu_time)). Jump-forward
    /// injection happens outside the mask workers, so forced tokens never
    /// contribute to either side of the ratio. Returns 1.0 when no masks
    /// were generated (either duration is zero — e.g. an instantaneous or
    /// fully unconstrained batch), so callers can multiply by it
    /// unconditionally.
    pub fn parallel_speedup(&self) -> f64 {
        if self.mask_time.is_zero() || self.mask_cpu_time.is_zero() {
            1.0
        } else {
            self.mask_cpu_time.as_secs_f64() / self.mask_time.as_secs_f64()
        }
    }
}

/// The serving engine.
#[derive(Debug)]
pub struct ServingEngine {
    backend: Arc<dyn ConstrainedBackend>,
    profile: ModelProfile,
    mode: ExecutionMode,
    llm: SimulatedLlm,
    /// Worker threads for per-lane mask generation (0 = available
    /// parallelism, 1 = serial).
    mask_parallelism: usize,
    /// How constrained lanes use jump-forward decoding.
    jump_forward: JumpForwardPolicy,
    /// Sorted vocabulary index for forced-text re-tokenization, built once
    /// and shared by every batch and scheduler (`Engine` policy only).
    sorted_vocab: OnceLock<Arc<SortedVocabulary>>,
}

impl ServingEngine {
    /// Creates an engine from a constrained-decoding backend, a latency
    /// profile and an execution mode. Mask generation parallelism defaults to
    /// the machine's available parallelism (capped by the batch size); use
    /// [`with_mask_parallelism`](Self::with_mask_parallelism) to override.
    /// Jump-forward decoding defaults to [`JumpForwardPolicy::Engine`].
    pub fn new(
        backend: Arc<dyn ConstrainedBackend>,
        profile: ModelProfile,
        mode: ExecutionMode,
    ) -> Self {
        Self::with_llm_behavior(backend, profile, mode, LlmBehavior::default())
    }

    /// Creates an engine with explicit simulated-LLM behaviour (used by the
    /// accuracy experiment).
    pub fn with_llm_behavior(
        backend: Arc<dyn ConstrainedBackend>,
        profile: ModelProfile,
        mode: ExecutionMode,
        behavior: LlmBehavior,
    ) -> Self {
        let llm = SimulatedLlm::new(Arc::clone(backend.vocabulary()), behavior);
        ServingEngine {
            backend,
            profile,
            mode,
            llm,
            mask_parallelism: 0,
            jump_forward: JumpForwardPolicy::Off,
            sorted_vocab: OnceLock::new(),
        }
        .with_jump_forward(JumpForwardPolicy::default())
    }

    /// Sets the number of worker threads used to fill the per-lane token
    /// bitmasks each decoding round: `1` forces the serial path, `0` (the
    /// default) uses the machine's available parallelism. The thread count is
    /// always additionally capped by the number of live lanes.
    pub fn with_mask_parallelism(mut self, threads: usize) -> Self {
        self.mask_parallelism = threads;
        self
    }

    /// Sets how constrained lanes use jump-forward decoding. The default is
    /// [`JumpForwardPolicy::Engine`] — grammar-forced tokens are injected
    /// without sampling, producing byte-identical outputs with fewer GPU
    /// steps; [`JumpForwardPolicy::Off`] restores the pre-jump-forward
    /// serving path (every token sampled) for comparisons.
    ///
    /// The byte-parity guarantee applies to lanes that run to completion: a
    /// lane truncated by `max_tokens` is cut at whatever token boundary the
    /// policy reached (sampled tokenization and the forced-token cover may
    /// tile the same bytes differently), though forced tokens always count
    /// toward the cap and injection never runs past it.
    pub fn with_jump_forward(mut self, policy: JumpForwardPolicy) -> Self {
        self.jump_forward = policy;
        if matches!(policy, JumpForwardPolicy::Engine) {
            // Build the re-tokenization index now, outside any batch's timed
            // region — otherwise the O(V log V) sort would be charged to the
            // first batch's total_time without showing up in forced_time.
            let _ = self.sorted_vocabulary();
        }
        self
    }

    /// The active jump-forward policy.
    pub fn jump_forward_policy(&self) -> JumpForwardPolicy {
        self.jump_forward
    }

    /// The backend driving constrained decoding.
    pub fn backend(&self) -> &Arc<dyn ConstrainedBackend> {
        &self.backend
    }

    /// Applies a tool-registry mutation between turns of an agentic session:
    /// the backend updates the compiled dispatch incrementally (only the
    /// touched trigger's segment grammar is recompiled; see
    /// [`ConstrainedBackend::update_structural`]) and caches the result, so
    /// requests submitted next with the returned catalog — to
    /// [`run_batch`](Self::run_batch) or a live
    /// [`serve`](Self::serve) scheduler — admit as cache hits. Returns the
    /// mutated catalog to use for those requests.
    ///
    /// # Errors
    ///
    /// Returns the backend's error if it has no incremental structural-tag
    /// support or the delta is invalid (duplicate tag, missing tag, dead
    /// added trigger under strict lint).
    pub fn update_tool_registry(
        &self,
        current: &xg_grammar::StructuralTag,
        delta: &xg_grammar::DispatchDelta,
    ) -> Result<xg_grammar::StructuralTag, BackendError> {
        let (next, _compiled) = self.backend.update_structural(current, delta)?;
        Ok(next)
    }

    /// The latency profile of the simulated GPU.
    pub(crate) fn profile(&self) -> &ModelProfile {
        &self.profile
    }

    /// The execution mode (serial vs overlapped grammar work).
    pub(crate) fn mode(&self) -> ExecutionMode {
        self.mode
    }

    /// The simulated LLM.
    pub(crate) fn llm(&self) -> &SimulatedLlm {
        &self.llm
    }

    /// The sorted vocabulary index used to re-tokenize forced text, built on
    /// first use and shared by every subsequent batch and scheduler.
    pub(crate) fn sorted_vocabulary(&self) -> Arc<SortedVocabulary> {
        Arc::clone(
            self.sorted_vocab
                .get_or_init(|| Arc::new(SortedVocabulary::new(self.backend.vocabulary()))),
        )
    }

    /// Effective mask-generation worker count for a batch of `lanes` lanes.
    pub(crate) fn effective_mask_threads(&self, lanes: usize) -> usize {
        let requested = if self.mask_parallelism == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.mask_parallelism
        };
        requested.min(lanes).max(1)
    }

    /// Starts a [`ContinuousScheduler`](crate::ContinuousScheduler) serving
    /// requests with this engine's backend, profile, execution mode and
    /// jump-forward policy. The scheduler owns its worker threads until
    /// [`shutdown`](crate::ContinuousScheduler::shutdown) (or drop).
    pub fn serve(&self, config: SchedulerConfig) -> crate::ContinuousScheduler {
        crate::ContinuousScheduler::start(self, config)
    }

    /// Verifies a speculative `draft` of tokens against a constrained lane's
    /// session **in one call** — the constraint-side half of speculative
    /// decoding: a cheap draft model proposes k tokens per target step, and
    /// the engine needs the longest grammar-valid prefix without paying k
    /// round trips through the session interface.
    ///
    /// The session advances past exactly the accepted prefix (each accepted
    /// token stays an individual rollback unit, so the caller can undo the
    /// tail the target model rejects), and the returned bytes are identical
    /// to accepting the same prefix token by token. An accepted EOS
    /// terminates the session and contributes no bytes.
    pub fn verify_draft(
        &self,
        session: &mut dyn BackendSession,
        draft: &[TokenId],
    ) -> DraftVerification {
        let vocab = self.backend.vocabulary();
        let accepted = session.accept_tokens_speculative(draft);
        let mut bytes = Vec::new();
        for &token in &draft[..accepted] {
            if Some(token) != vocab.eos() {
                bytes.extend_from_slice(vocab.token_bytes(token));
            }
        }
        DraftVerification { accepted, bytes }
    }

    /// Runs a batch of requests to completion through the continuous
    /// scheduler: every request is submitted up front, compiled on one
    /// admission worker (in submission order, so cache accounting matches
    /// the fixed loop), decoded concurrently, and collected when the last
    /// lane finishes. Produces byte-identical per-lane outputs to
    /// [`run_batch_fixed`](Self::run_batch_fixed) — proven differentially in
    /// `tests/continuous_batching.rs`.
    ///
    /// # Errors
    ///
    /// Returns the backend's error if one of the grammars cannot be compiled
    /// by this backend (after letting the remaining lanes finish).
    pub fn run_batch(
        &self,
        requests: &[EngineRequest],
    ) -> Result<(Vec<RequestResult>, BatchMetrics), BackendError> {
        assert!(!requests.is_empty(), "batch must not be empty");
        let batch_size = requests.len();
        let constrained_lanes = requests
            .iter()
            .filter(|r| r.constraint.is_constrained())
            .count();
        let mask_threads = self.effective_mask_threads(constrained_lanes.max(1));
        let cache_before = self.backend.cache_stats().unwrap_or_default();
        let start = Instant::now();

        let scheduler = self.serve(SchedulerConfig {
            max_lanes: batch_size,
            queue_capacity: batch_size,
            admission_workers: 1,
            mask_workers: mask_threads,
        });
        let mut handles = Vec::with_capacity(batch_size);
        for request in requests {
            handles.push(
                scheduler
                    .submit(request.clone())
                    .expect("wrapper queue is sized to the batch"),
            );
        }
        let mut results = Vec::with_capacity(batch_size);
        let mut first_error = None;
        let mut ttft: Option<Duration> = None;
        for handle in handles {
            match handle.wait() {
                Ok(done) => {
                    ttft = Some(ttft.map_or(done.timing.ttft, |t| t.min(done.timing.ttft)));
                    results.push(done.result);
                }
                Err(err) => {
                    if first_error.is_none() {
                        first_error = Some(err);
                    }
                    results.push(RequestResult::failed());
                }
            }
        }
        let sched_metrics = scheduler.metrics();
        scheduler.shutdown();
        if let Some(err) = first_error {
            return Err(err);
        }

        let total_time = start.elapsed();
        let total_tokens: usize = results.iter().map(|r| r.tokens).sum();
        let forced_time = sched_metrics.forced_time;
        let metrics = BatchMetrics {
            ttft: ttft.unwrap_or(total_time),
            tpot: tpot_of(total_time, forced_time, total_tokens, batch_size),
            total_time,
            total_tokens,
            jump_forward_tokens: results.iter().map(|r| r.jump_forward_tokens).sum(),
            jump_forward_chars: results.iter().map(|r| r.jump_forward_chars).sum(),
            forced_time,
            mask_time: sched_metrics.mask_wait_time,
            mask_cpu_time: sched_metrics.mask_busy_time,
            mask_threads,
            gpu_time: sched_metrics.gpu_time,
            cache: self
                .backend
                .cache_stats()
                .unwrap_or_default()
                .delta_since(&cache_before),
        };
        Ok((results, metrics))
    }

    /// Runs a fixed batch of requests to completion with the original
    /// lock-step loop: every lane joins at round 0 and the batch ends when
    /// the last lane finishes. Kept as the reference implementation the
    /// continuous scheduler is differentially tested against.
    ///
    /// # Errors
    ///
    /// Returns the backend's error if one of the grammars cannot be compiled
    /// by this backend.
    pub fn run_batch_fixed(
        &self,
        requests: &[EngineRequest],
    ) -> Result<(Vec<RequestResult>, BatchMetrics), BackendError> {
        assert!(!requests.is_empty(), "batch must not be empty");
        let vocab = Arc::clone(self.backend.vocabulary());
        let batch_size = requests.len();
        // Only constrained lanes generate masks; unconstrained requests must
        // not inflate the reported worker count.
        let constrained_lanes = requests
            .iter()
            .filter(|r| r.constraint.is_constrained())
            .count();
        let mask_threads = self.effective_mask_threads(constrained_lanes.max(1));
        let cache_before = self.backend.cache_stats().unwrap_or_default();
        let start = Instant::now();

        // ---- Prefill phase: grammar compilation overlapped with prefill. ----
        let total_prompt_tokens: usize = requests.iter().map(|r| r.prompt_tokens).sum();
        let prefill_time = self.profile.prefill_time(total_prompt_tokens);
        let preprocessing = Instant::now();
        let mut compiled_constraints = Vec::with_capacity(batch_size);
        for request in requests {
            compiled_constraints.push(request.constraint.compile(self.backend.as_ref())?);
        }
        let mut lanes: Vec<Lane> = requests
            .iter()
            .zip(&compiled_constraints)
            .map(|(request, compiled)| {
                Lane::new(
                    compiled.as_ref().map(|c| c.new_session()),
                    self.llm.start_request(&request.reference, request.seed),
                    request.max_tokens,
                )
            })
            .collect();
        let preprocessing_time = preprocessing.elapsed();
        // Prefill runs on the GPU; preprocessing runs on the CPU. Overlapped
        // mode hides whichever is shorter.
        let prefill_wall = match self.mode {
            ExecutionMode::Serial => prefill_time + preprocessing_time,
            ExecutionMode::Overlapped => prefill_time.max(preprocessing_time),
        };
        busy_wait(prefill_wall.saturating_sub(preprocessing_time));

        // ---- Decode phase. ----
        let mut masks: Vec<TokenBitmask> = (0..batch_size)
            .map(|_| TokenBitmask::new_all_rejected(vocab.len()))
            .collect();

        let mut mask_time = Duration::ZERO;
        let mut mask_cpu_time = Duration::ZERO;
        let mut gpu_time = Duration::ZERO;
        let mut ttft = None;
        let gpu_step = self.profile.decode_step_time(batch_size);
        let policy = self.jump_forward;
        let sorted = match policy {
            JumpForwardPolicy::Engine => Some(self.sorted_vocabulary()),
            _ => None,
        };
        let ctx = ForcedContext {
            policy,
            sorted: sorted.as_deref(),
            vocab: &vocab,
        };

        // Lane-start jump-forward: inject any forced prefix before the first
        // mask is built.
        for lane in &mut lanes {
            lane.start(&ctx);
        }

        while lanes.iter().any(|l| !l.finished) {
            // Step 1 + 2: mask generation (lanes in parallel) and GPU
            // decoding.
            let mut mask_elapsed = Duration::ZERO;
            let mut mask_cpu = Duration::ZERO;
            match self.mode {
                ExecutionMode::Serial => {
                    let mask_start = Instant::now();
                    mask_cpu = generate_masks(&mut lanes, &mut masks, mask_threads);
                    mask_elapsed = mask_start.elapsed();
                    busy_wait(gpu_step);
                }
                ExecutionMode::Overlapped => {
                    std::thread::scope(|scope| {
                        let gpu = scope.spawn(|| busy_wait(gpu_step));
                        let mask_start = Instant::now();
                        mask_cpu = generate_masks(&mut lanes, &mut masks, mask_threads);
                        mask_elapsed = mask_start.elapsed();
                        gpu.join().expect("gpu simulation thread panicked");
                    });
                }
            }
            mask_time += mask_elapsed;
            mask_cpu_time += mask_cpu;
            gpu_time += gpu_step;

            // Step 3: sampling and state advance.
            for (lane, mask) in lanes.iter_mut().zip(&masks) {
                if lane.finished {
                    continue;
                }
                let mask = lane.is_constrained().then_some(mask);
                lane.step(mask, &ctx);
            }
            if ttft.is_none() {
                ttft = Some(start.elapsed());
            }
        }

        let total_time = start.elapsed();
        let total_tokens: usize = lanes.iter().map(|l| l.sampled_tokens).sum();
        let jump_forward_tokens: usize = lanes.iter().map(|l| l.forced_tokens).sum();
        let jump_forward_chars: usize = lanes.iter().map(|l| l.forced_chars).sum();
        let forced_time: Duration = lanes.iter().map(|l| l.forced_time).sum();
        let results = lanes
            .iter()
            .map(|lane| RequestResult {
                output: lane.output.clone(),
                tokens: lane.sampled_tokens,
                jump_forward_tokens: lane.forced_tokens,
                jump_forward_chars: lane.forced_chars,
                completed: lane.completed,
            })
            .collect();
        let metrics = BatchMetrics {
            ttft: ttft.unwrap_or(total_time),
            tpot: tpot_of(total_time, forced_time, total_tokens, batch_size),
            total_time,
            total_tokens,
            jump_forward_tokens,
            jump_forward_chars,
            forced_time,
            mask_time,
            mask_cpu_time,
            mask_threads,
            gpu_time,
            cache: self
                .backend
                .cache_stats()
                .unwrap_or_default()
                .delta_since(&cache_before),
        };
        Ok((results, metrics))
    }
}

/// Per-sampled-token latency of the batch as a whole, as in §4.2: decode
/// wall-clock divided by sampled tokens per sequence (fractional —
/// jump-forward can leave lanes with very few sampled tokens, where integer
/// division would round the divisor down to 1 and report the whole decode
/// time as "per token"). Forced-injection time is carved out so jump-forward
/// cannot make the per-token figure look cheaper than the GPU steps it
/// actually paid for.
fn tpot_of(
    total_time: Duration,
    forced_time: Duration,
    total_tokens: usize,
    batch_size: usize,
) -> Duration {
    if total_tokens == 0 {
        Duration::ZERO
    } else {
        total_time
            .saturating_sub(forced_time)
            .div_f64((total_tokens as f64 / batch_size.max(1) as f64).max(1.0))
    }
}

/// Fills the token bitmask of every live constrained lane, spreading the
/// lanes over up to `threads` scoped worker threads. Returns the per-lane
/// CPU time summed across workers (≥ the wall-clock time when `threads > 1`).
fn generate_masks(lanes: &mut [Lane], masks: &mut [TokenBitmask], threads: usize) -> Duration {
    let mut live: Vec<(&mut Box<dyn BackendSession>, &mut TokenBitmask)> = lanes
        .iter_mut()
        .zip(masks.iter_mut())
        .filter_map(|(lane, mask)| {
            if lane.finished {
                return None;
            }
            lane.session.as_mut().map(|s| (s, mask))
        })
        .collect();
    if live.is_empty() {
        return Duration::ZERO;
    }
    let threads = threads.min(live.len()).max(1);
    if threads == 1 {
        let lane_start = Instant::now();
        for (session, mask) in &mut live {
            session.fill_mask(mask);
        }
        return lane_start.elapsed();
    }
    let chunk_size = live.len().div_ceil(threads);
    let mut cpu_time = Duration::ZERO;
    std::thread::scope(|scope| {
        let workers: Vec<_> = live
            .chunks_mut(chunk_size)
            .map(|chunk| {
                scope.spawn(move || {
                    let lane_start = Instant::now();
                    for (session, mask) in chunk {
                        session.fill_mask(mask);
                    }
                    lane_start.elapsed()
                })
            })
            .collect();
        for worker in workers {
            cpu_time += worker.join().expect("mask worker panicked");
        }
    });
    cpu_time
}

/// Spends approximately `duration` of wall-clock time on the current thread.
/// Short waits spin (sleep granularity is too coarse for sub-millisecond GPU
/// steps); longer waits sleep most of the duration and spin the rest.
pub(crate) fn busy_wait(duration: Duration) {
    if duration.is_zero() {
        return;
    }
    let start = Instant::now();
    if duration > Duration::from_millis(2) {
        std::thread::sleep(duration - Duration::from_millis(1));
    }
    while start.elapsed() < duration {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xg_baselines::XGrammarBackend;
    use xg_datasets::json_mode_eval_like;
    use xg_tokenizer::test_vocabulary;

    fn fast_profile() -> ModelProfile {
        ModelProfile::llama31_8b_h100().scaled(0.02)
    }

    fn engine(mode: ExecutionMode) -> ServingEngine {
        let vocab = Arc::new(test_vocabulary(2000));
        let backend = Arc::new(XGrammarBackend::new(vocab));
        ServingEngine::new(backend, fast_profile(), mode)
    }

    fn requests(n: usize) -> Vec<EngineRequest> {
        json_mode_eval_like(n, 17)
            .into_iter()
            .enumerate()
            .map(|(i, task)| EngineRequest {
                constraint: LaneConstraint::Grammar(
                    xg_grammar::json_schema_to_grammar(&task.schema).unwrap(),
                ),
                prompt_tokens: 139,
                reference: task.reference,
                max_tokens: 200,
                seed: i as u64,
            })
            .collect()
    }

    #[test]
    fn constrained_batch_produces_schema_valid_json() {
        let engine = engine(ExecutionMode::Overlapped);
        let reqs = requests(2);
        let (results, metrics) = engine.run_batch(&reqs).unwrap();
        assert_eq!(results.len(), 2);
        for r in &results {
            let parsed: serde_json::Value =
                serde_json::from_slice(&r.output).expect("constrained output parses as JSON");
            assert!(parsed.is_object());
        }
        assert!(metrics.total_tokens > 0);
        assert!(metrics.tpot > Duration::ZERO);
    }

    #[test]
    fn overlap_hides_mask_generation_time() {
        // Use the naive full-scan backend so mask generation is expensive
        // enough that overlapping it with the GPU step is clearly visible.
        let vocab = Arc::new(test_vocabulary(2000));
        let backend: Arc<dyn xg_baselines::ConstrainedBackend> =
            Arc::new(xg_baselines::NaivePdaBackend::new(Arc::clone(&vocab)));
        let reqs: Vec<EngineRequest> = requests(2)
            .into_iter()
            .map(|mut r| {
                r.max_tokens = 16;
                r
            })
            .collect();
        // Use the real (unscaled) per-step GPU time so the serial engine pays
        // mask + GPU while the overlapped engine pays only max(mask, GPU).
        let profile = ModelProfile::llama31_8b_h100();
        // Both engines measure wall-clock time, so a loaded CI machine can
        // momentarily starve the overlapped engine's helper thread; retry a
        // few times and require the speedup to show up at least once.
        let mut last = None;
        for _ in 0..3 {
            let serial =
                ServingEngine::new(Arc::clone(&backend), profile.clone(), ExecutionMode::Serial)
                    .run_batch(&reqs)
                    .unwrap()
                    .1;
            let overlapped = ServingEngine::new(
                Arc::clone(&backend),
                profile.clone(),
                ExecutionMode::Overlapped,
            )
            .run_batch(&reqs)
            .unwrap()
            .1;
            if overlapped.total_time < serial.total_time {
                return;
            }
            last = Some((overlapped, serial));
        }
        let (overlapped, serial) = last.unwrap();
        panic!(
            "overlapped {:?} vs serial {:?} (mask {:?}, gpu {:?})",
            overlapped.total_time, serial.total_time, serial.mask_time, serial.gpu_time
        );
    }

    #[test]
    fn parallel_and_serial_mask_generation_agree() {
        // Lane fill order must not matter: a batch run with one mask worker
        // and with four produces identical outputs.
        let vocab = Arc::new(test_vocabulary(2000));
        let backend: Arc<dyn xg_baselines::ConstrainedBackend> =
            Arc::new(XGrammarBackend::new(Arc::clone(&vocab)));
        let reqs = requests(4);
        let serial =
            ServingEngine::new(Arc::clone(&backend), fast_profile(), ExecutionMode::Serial)
                .with_mask_parallelism(1);
        let parallel =
            ServingEngine::new(Arc::clone(&backend), fast_profile(), ExecutionMode::Serial)
                .with_mask_parallelism(4);
        let (serial_results, serial_metrics) = serial.run_batch(&reqs).unwrap();
        let (parallel_results, parallel_metrics) = parallel.run_batch(&reqs).unwrap();
        for (s, p) in serial_results.iter().zip(&parallel_results) {
            assert_eq!(s.output, p.output);
            assert_eq!(s.tokens, p.tokens);
        }
        assert_eq!(serial_metrics.mask_threads, 1);
        assert!(parallel_metrics.mask_threads > 1);
        // Timing sanity only (the realized speedup depends on mask weight and
        // machine load; the cache_serving experiment measures it properly).
        assert!(parallel_metrics.mask_cpu_time > Duration::ZERO);
        assert!(parallel_metrics.parallel_speedup() > 0.0);
    }

    #[test]
    fn batch_metrics_report_cache_activity() {
        // Four requests sharing one schema family: the first compiles, the
        // rest hit the compiled-grammar cache.
        let vocab = Arc::new(test_vocabulary(2000));
        let backend = Arc::new(XGrammarBackend::new(Arc::clone(&vocab)));
        let engine = ServingEngine::new(backend, fast_profile(), ExecutionMode::Serial);
        let schema = xg_datasets::json_mode_eval_like(1, 17).remove(0).schema;
        let grammar = xg_grammar::json_schema_to_grammar(&schema).unwrap();
        let reqs: Vec<EngineRequest> = (0..4)
            .map(|i| EngineRequest {
                constraint: LaneConstraint::Grammar(grammar.clone()),
                prompt_tokens: 10,
                reference: br#"{"location": "paris", "unit": "celsius", "days": 2}"#.to_vec(),
                max_tokens: 64,
                seed: i as u64,
            })
            .collect();
        let (_, metrics) = engine.run_batch(&reqs).unwrap();
        assert_eq!(metrics.cache.misses, 1);
        assert_eq!(metrics.cache.hits, 3);
        assert!(metrics.cache.hit_rate() > 0.7);
        // A second identical batch is all hits.
        let engine2 = ServingEngine::new(
            Arc::new(XGrammarBackend::new(Arc::clone(&vocab))),
            fast_profile(),
            ExecutionMode::Serial,
        );
        let (_, first) = engine2.run_batch(&reqs).unwrap();
        let (_, second) = engine2.run_batch(&reqs).unwrap();
        assert_eq!(first.cache.misses, 1);
        assert_eq!(second.cache.misses, 0);
        assert_eq!(second.cache.hits, 4);
    }

    #[test]
    fn jump_forward_policies_agree_byte_for_byte() {
        // Long forced key names make the schema lanes jump-forward heavy.
        let vocab = Arc::new(test_vocabulary(2000));
        let backend: Arc<dyn xg_baselines::ConstrainedBackend> =
            Arc::new(XGrammarBackend::new(Arc::clone(&vocab)));
        let reqs = requests(3);
        let run = |policy: JumpForwardPolicy| {
            ServingEngine::new(Arc::clone(&backend), fast_profile(), ExecutionMode::Serial)
                .with_mask_parallelism(1)
                .with_jump_forward(policy)
                .run_batch(&reqs)
                .unwrap()
        };
        let (off_results, off_metrics) = run(JumpForwardPolicy::Off);
        let (matcher_results, matcher_metrics) = run(JumpForwardPolicy::Matcher);
        let (engine_results, engine_metrics) = run(JumpForwardPolicy::Engine);
        for ((off, matcher), engine) in off_results
            .iter()
            .zip(&matcher_results)
            .zip(&engine_results)
        {
            assert_eq!(off.output, matcher.output, "matcher policy changed bytes");
            assert_eq!(off.output, engine.output, "engine policy changed bytes");
            assert!(engine.tokens <= off.tokens, "jump-forward added GPU steps");
        }
        assert_eq!(off_metrics.jump_forward_tokens, 0);
        assert_eq!(off_metrics.jump_forward_chars, 0);
        assert_eq!(off_metrics.forced_time, Duration::ZERO);
        // Matcher policy injects raw byte runs, Engine policy real tokens.
        assert_eq!(matcher_metrics.jump_forward_tokens, 0);
        assert!(matcher_metrics.jump_forward_chars > 0);
        assert!(engine_metrics.jump_forward_tokens > 0);
        assert!(engine_metrics.jump_forward_chars > 0);
        assert!(engine_metrics.forced_time > Duration::ZERO);
        assert!(engine_metrics.total_tokens < off_metrics.total_tokens);
    }

    #[test]
    fn forced_tokens_count_toward_the_token_cap() {
        // A grammar that forces a long fixed prefix: with a tiny cap, the
        // engine must stop mid-injection instead of overshooting.
        let vocab = Arc::new(test_vocabulary(2000));
        let backend = Arc::new(XGrammarBackend::new(Arc::clone(&vocab)));
        let engine = ServingEngine::new(backend, fast_profile(), ExecutionMode::Serial)
            .with_jump_forward(JumpForwardPolicy::Engine);
        let grammar = xg_grammar::parse_ebnf(
            r#"root ::= "{\"transaction_identifier\": " [0-9]+ "}""#,
            "root",
        )
        .unwrap();
        let req = EngineRequest {
            constraint: LaneConstraint::Grammar(grammar),
            prompt_tokens: 4,
            reference: br#"{"transaction_identifier": 7}"#.to_vec(),
            max_tokens: 3,
            seed: 0,
        };
        let (results, _) = engine.run_batch(std::slice::from_ref(&req)).unwrap();
        assert!(!results[0].completed, "the cap must cut generation short");
        assert!(
            results[0].tokens + results[0].jump_forward_tokens <= 3,
            "sampled {} + forced {} exceeded the cap",
            results[0].tokens,
            results[0].jump_forward_tokens
        );
        assert!(results[0].jump_forward_tokens > 0);
    }

    #[test]
    fn unconstrained_requests_run_without_grammar() {
        let vocab = Arc::new(test_vocabulary(2000));
        let backend = Arc::new(XGrammarBackend::new(vocab));
        let engine = ServingEngine::new(backend, fast_profile(), ExecutionMode::Serial);
        let req = EngineRequest {
            constraint: LaneConstraint::Unconstrained,
            prompt_tokens: 10,
            reference: br#"{"ok": true}"#.to_vec(),
            max_tokens: 100,
            seed: 0,
        };
        let (results, _) = engine.run_batch(std::slice::from_ref(&req)).unwrap();
        assert!(results[0].completed);
        assert!(!results[0].output.is_empty());
    }

    #[test]
    fn mixed_prose_and_tool_call_lanes_run_in_one_batch() {
        use xg_grammar::{StructuralTag, TagContent, TagSpec};

        let vocab = Arc::new(test_vocabulary(2000));
        let backend = Arc::new(XGrammarBackend::new(Arc::clone(&vocab)));
        let engine = ServingEngine::with_llm_behavior(
            backend,
            fast_profile(),
            ExecutionMode::Serial,
            LlmBehavior {
                prose_probability: 0.0,
                type_error_probability: 0.0,
                seed: 5,
            },
        );
        let schema = serde_json::json!({
            "type": "object",
            "properties": {"city": {"type": "string"}},
            "required": ["city"],
            "additionalProperties": false
        });
        let tag = StructuralTag::new(vec![TagSpec {
            begin: "<tool_call>".into(),
            content: TagContent::JsonSchema(schema),
            end: "</tool_call>".into(),
        }]);
        let tool_reference = br#"Looking that up. <tool_call>{"city": "paris"}</tool_call> Done."#;
        let reqs = vec![
            EngineRequest {
                constraint: LaneConstraint::StructuralTag(tag),
                prompt_tokens: 20,
                reference: tool_reference.to_vec(),
                max_tokens: 200,
                seed: 0,
            },
            EngineRequest {
                constraint: LaneConstraint::Unconstrained,
                prompt_tokens: 20,
                reference: b"Plain prose lane, no structure at all.".to_vec(),
                max_tokens: 200,
                seed: 1,
            },
        ];
        let (results, metrics) = engine.run_batch(&reqs).unwrap();
        // The structural lane reproduces prose AND a conformant tool call.
        let output = String::from_utf8_lossy(&results[0].output);
        assert!(results[0].completed, "structural lane finishes with EOS");
        assert_eq!(output, String::from_utf8_lossy(tool_reference));
        let inner = output
            .split("<tool_call>")
            .nth(1)
            .and_then(|s| s.split("</tool_call>").next())
            .expect("tagged segment present");
        let parsed: serde_json::Value = serde_json::from_str(inner).unwrap();
        assert_eq!(parsed["city"], serde_json::json!("paris"));
        // The prose lane is untouched by the grammar machinery.
        assert!(results[1].completed);
        // Only the structural lane counts as constrained for mask workers.
        assert_eq!(metrics.mask_threads, 1);
    }

    #[test]
    fn jump_forward_defaults_to_engine_policy() {
        let engine = engine(ExecutionMode::Serial);
        assert_eq!(engine.jump_forward_policy(), JumpForwardPolicy::Engine);
        // `Off` stays reachable through the builder.
        let vocab = Arc::new(test_vocabulary(600));
        let off = ServingEngine::new(
            Arc::new(XGrammarBackend::new(vocab)),
            fast_profile(),
            ExecutionMode::Serial,
        )
        .with_jump_forward(JumpForwardPolicy::Off);
        assert_eq!(off.jump_forward_policy(), JumpForwardPolicy::Off);
    }

    #[test]
    fn parallel_speedup_guards_zero_mask_times() {
        let base = BatchMetrics {
            ttft: Duration::ZERO,
            tpot: Duration::ZERO,
            total_time: Duration::ZERO,
            total_tokens: 0,
            jump_forward_tokens: 0,
            jump_forward_chars: 0,
            forced_time: Duration::ZERO,
            mask_time: Duration::ZERO,
            mask_cpu_time: Duration::ZERO,
            mask_threads: 4,
            gpu_time: Duration::ZERO,
            cache: GrammarCacheStats::default(),
        };
        // An instantaneous (or fully unconstrained) batch reports a neutral
        // speedup instead of dividing by zero.
        assert_eq!(base.parallel_speedup(), 1.0);
        // One-sided zeros are guarded too.
        let wall_only = BatchMetrics {
            mask_time: Duration::from_millis(5),
            ..base
        };
        assert_eq!(wall_only.parallel_speedup(), 1.0);
        let cpu_only = BatchMetrics {
            mask_cpu_time: Duration::from_millis(5),
            ..base
        };
        assert_eq!(cpu_only.parallel_speedup(), 1.0);
        // Both sides populated: the honest ratio.
        let both = BatchMetrics {
            mask_time: Duration::from_millis(5),
            mask_cpu_time: Duration::from_millis(20),
            ..base
        };
        assert!((both.parallel_speedup() - 4.0).abs() < 1e-9);
    }
}
