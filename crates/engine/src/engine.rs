//! The simulated LLM serving engine: fixed-batch decoding with optional
//! CPU/GPU overlap (paper §3.5 and §4.2).
//!
//! The engine processes a batch of requests in lock-step decoding rounds,
//! exactly like an online serving engine with a fixed batch:
//!
//! 1. for every live request, the grammar backend produces a token mask
//!    (CPU work);
//! 2. the simulated GPU performs one decoding step for the whole batch
//!    (a calibrated busy-wait on a worker thread);
//! 3. the sampler picks each request's next token under its mask and the
//!    matchers advance.
//!
//! In **serial** mode steps 1 and 2 run one after the other; in
//! **overlapped** mode step 1 runs on the engine thread while step 2 runs
//! concurrently on the GPU thread, and the engine synchronizes before
//! sampling — the co-design of §3.5. Grammar preprocessing (compilation) is
//! likewise overlapped with prefill.

use std::sync::Arc;
use std::time::{Duration, Instant};

use xg_baselines::{BackendError, BackendSession, ConstrainedBackend};
use xg_core::TokenBitmask;
use xg_grammar::Grammar;
use crate::llm::{LlmBehavior, SimulatedLlm};
use crate::profiles::ModelProfile;

/// Whether grammar work is overlapped with the simulated GPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutionMode {
    /// Mask generation, then GPU step, sequentially.
    Serial,
    /// Mask generation concurrent with the GPU step (paper §3.5).
    Overlapped,
}

/// A single generation request.
#[derive(Debug, Clone)]
pub struct EngineRequest {
    /// The grammar constraining this request (`None` = unconstrained).
    pub grammar: Option<Grammar>,
    /// Number of prompt tokens (drives simulated prefill time).
    pub prompt_tokens: usize,
    /// Reference output the simulated LLM tries to produce.
    pub reference: Vec<u8>,
    /// Hard cap on generated tokens.
    pub max_tokens: usize,
}

/// Per-request result.
#[derive(Debug, Clone)]
pub struct RequestResult {
    /// Generated text (token bytes concatenated).
    pub output: Vec<u8>,
    /// Number of generated tokens (excluding EOS).
    pub tokens: usize,
    /// Whether generation finished with EOS (as opposed to the token cap).
    pub completed: bool,
}

/// Batch-level metrics, the quantities reported in §4.2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchMetrics {
    /// Time to first token: prefill + grammar preprocessing (overlapped or
    /// not) + the first decoding round.
    pub ttft: Duration,
    /// Mean time per output token across the batch.
    pub tpot: Duration,
    /// Total wall-clock time of the batch.
    pub total_time: Duration,
    /// Total generated tokens.
    pub total_tokens: usize,
    /// Time spent in grammar mask generation (CPU side, summed).
    pub mask_time: Duration,
    /// Time spent in simulated GPU decoding (summed over rounds).
    pub gpu_time: Duration,
}

/// The serving engine.
#[derive(Debug)]
pub struct ServingEngine {
    backend: Arc<dyn ConstrainedBackend>,
    profile: ModelProfile,
    mode: ExecutionMode,
    llm: SimulatedLlm,
}

impl ServingEngine {
    /// Creates an engine from a constrained-decoding backend, a latency
    /// profile and an execution mode.
    pub fn new(
        backend: Arc<dyn ConstrainedBackend>,
        profile: ModelProfile,
        mode: ExecutionMode,
    ) -> Self {
        let llm = SimulatedLlm::new(Arc::clone(backend.vocabulary()), LlmBehavior::default());
        ServingEngine {
            backend,
            profile,
            mode,
            llm,
        }
    }

    /// Creates an engine with explicit simulated-LLM behaviour (used by the
    /// accuracy experiment).
    pub fn with_llm_behavior(
        backend: Arc<dyn ConstrainedBackend>,
        profile: ModelProfile,
        mode: ExecutionMode,
        behavior: LlmBehavior,
    ) -> Self {
        let llm = SimulatedLlm::new(Arc::clone(backend.vocabulary()), behavior);
        ServingEngine {
            backend,
            profile,
            mode,
            llm,
        }
    }

    /// The backend driving constrained decoding.
    pub fn backend(&self) -> &Arc<dyn ConstrainedBackend> {
        &self.backend
    }

    /// Runs a fixed batch of requests to completion.
    ///
    /// # Errors
    ///
    /// Returns the backend's error if one of the grammars cannot be compiled
    /// by this backend.
    pub fn run_batch(
        &self,
        requests: &[EngineRequest],
    ) -> Result<(Vec<RequestResult>, BatchMetrics), BackendError> {
        assert!(!requests.is_empty(), "batch must not be empty");
        let vocab = Arc::clone(self.backend.vocabulary());
        let batch_size = requests.len();
        let start = Instant::now();

        // ---- Prefill phase: grammar compilation overlapped with prefill. ----
        let total_prompt_tokens: usize = requests.iter().map(|r| r.prompt_tokens).sum();
        let prefill_time = self.profile.prefill_time(total_prompt_tokens);
        let mut sessions: Vec<Option<Box<dyn BackendSession>>> = Vec::with_capacity(batch_size);
        let preprocessing = Instant::now();
        let mut compiled_constraints = Vec::with_capacity(batch_size);
        for request in requests {
            match &request.grammar {
                Some(grammar) => compiled_constraints.push(Some(self.backend.compile(grammar)?)),
                None => compiled_constraints.push(None),
            }
        }
        for compiled in &compiled_constraints {
            sessions.push(compiled.as_ref().map(|c| c.new_session()));
        }
        let preprocessing_time = preprocessing.elapsed();
        // Prefill runs on the GPU; preprocessing runs on the CPU. Overlapped
        // mode hides whichever is shorter.
        let prefill_wall = match self.mode {
            ExecutionMode::Serial => prefill_time + preprocessing_time,
            ExecutionMode::Overlapped => prefill_time.max(preprocessing_time),
        };
        busy_wait(prefill_wall.saturating_sub(preprocessing_time));

        // ---- Decode phase. ----
        let mut llm_states: Vec<_> = requests
            .iter()
            .enumerate()
            .map(|(i, r)| self.llm.start_request(&r.reference, i as u64))
            .collect();
        let mut outputs: Vec<Vec<u8>> = vec![Vec::new(); batch_size];
        let mut token_counts = vec![0usize; batch_size];
        let mut finished = vec![false; batch_size];
        let mut masks: Vec<TokenBitmask> = (0..batch_size)
            .map(|_| TokenBitmask::new_all_rejected(vocab.len()))
            .collect();

        let mut mask_time = Duration::ZERO;
        let mut gpu_time = Duration::ZERO;
        let mut ttft = None;
        let gpu_step = self.profile.decode_step_time(batch_size);

        while finished.iter().any(|f| !f) {
            // Step 1 + 2: mask generation and GPU decoding.
            let mut mask_elapsed = Duration::ZERO;
            match self.mode {
                ExecutionMode::Serial => {
                    let mask_start = Instant::now();
                    self.generate_masks(&mut sessions, &finished, &mut masks);
                    mask_elapsed = mask_start.elapsed();
                    busy_wait(gpu_step);
                }
                ExecutionMode::Overlapped => {
                    std::thread::scope(|scope| {
                        let gpu = scope.spawn(|| busy_wait(gpu_step));
                        let mask_start = Instant::now();
                        self.generate_masks(&mut sessions, &finished, &mut masks);
                        mask_elapsed = mask_start.elapsed();
                        gpu.join().expect("gpu simulation thread panicked");
                    });
                }
            }
            mask_time += mask_elapsed;
            gpu_time += gpu_step;

            // Step 3: sampling and state advance.
            for i in 0..batch_size {
                if finished[i] {
                    continue;
                }
                let token = match &mut sessions[i] {
                    Some(_) => {
                        let choice = llm_states[i].propose_constrained(&masks[i]);
                        match choice {
                            Some(t) => t,
                            None => {
                                // No token is allowed: the structure is stuck
                                // (should not happen); end the request.
                                finished[i] = true;
                                continue;
                            }
                        }
                    }
                    None => llm_states[i].propose(),
                };
                if Some(token) == vocab.eos() {
                    finished[i] = true;
                    if let Some(session) = &mut sessions[i] {
                        session.accept_token(token);
                    }
                    continue;
                }
                if let Some(session) = &mut sessions[i] {
                    if !session.accept_token(token) {
                        finished[i] = true;
                        continue;
                    }
                }
                outputs[i].extend_from_slice(vocab.token_bytes(token));
                llm_states[i].advance(token);
                token_counts[i] += 1;
                if token_counts[i] >= requests[i].max_tokens {
                    finished[i] = true;
                }
                // Unconstrained requests stop when the intention is done.
                if sessions[i].is_none() && llm_states[i].finished() {
                    finished[i] = true;
                }
            }
            if ttft.is_none() {
                ttft = Some(start.elapsed());
            }
        }

        let total_time = start.elapsed();
        let total_tokens: usize = token_counts.iter().sum();
        let results = (0..batch_size)
            .map(|i| RequestResult {
                output: outputs[i].clone(),
                tokens: token_counts[i],
                completed: finished[i],
            })
            .collect();
        let metrics = BatchMetrics {
            ttft: ttft.unwrap_or(total_time),
            tpot: if total_tokens == 0 {
                Duration::ZERO
            } else {
                // Per-token latency of the batch as a whole, as in §4.2:
                // decode wall-clock divided by tokens per sequence.
                total_time / (total_tokens.max(1) as u32 / batch_size.max(1) as u32).max(1)
            },
            total_time,
            total_tokens,
            mask_time,
            gpu_time,
        };
        Ok((results, metrics))
    }

    fn generate_masks(
        &self,
        sessions: &mut [Option<Box<dyn BackendSession>>],
        finished: &[bool],
        masks: &mut [TokenBitmask],
    ) {
        for ((session, mask), done) in sessions.iter_mut().zip(masks.iter_mut()).zip(finished) {
            if *done {
                continue;
            }
            if let Some(session) = session {
                session.fill_mask(mask);
            }
        }
    }
}

/// Spends approximately `duration` of wall-clock time on the current thread.
/// Short waits spin (sleep granularity is too coarse for sub-millisecond GPU
/// steps); longer waits sleep most of the duration and spin the rest.
fn busy_wait(duration: Duration) {
    if duration.is_zero() {
        return;
    }
    let start = Instant::now();
    if duration > Duration::from_millis(2) {
        std::thread::sleep(duration - Duration::from_millis(1));
    }
    while start.elapsed() < duration {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xg_baselines::XGrammarBackend;
    use xg_datasets::json_mode_eval_like;
    use xg_tokenizer::test_vocabulary;

    fn fast_profile() -> ModelProfile {
        ModelProfile::llama31_8b_h100().scaled(0.02)
    }

    fn engine(mode: ExecutionMode) -> ServingEngine {
        let vocab = Arc::new(test_vocabulary(2000));
        let backend = Arc::new(XGrammarBackend::new(vocab));
        ServingEngine::new(backend, fast_profile(), mode)
    }

    fn requests(n: usize) -> Vec<EngineRequest> {
        json_mode_eval_like(n, 17)
            .into_iter()
            .map(|task| EngineRequest {
                grammar: Some(xg_grammar::json_schema_to_grammar(&task.schema).unwrap()),
                prompt_tokens: 139,
                reference: task.reference,
                max_tokens: 200,
            })
            .collect()
    }

    #[test]
    fn constrained_batch_produces_schema_valid_json() {
        let engine = engine(ExecutionMode::Overlapped);
        let reqs = requests(2);
        let (results, metrics) = engine.run_batch(&reqs).unwrap();
        assert_eq!(results.len(), 2);
        for r in &results {
            let parsed: serde_json::Value =
                serde_json::from_slice(&r.output).expect("constrained output parses as JSON");
            assert!(parsed.is_object());
        }
        assert!(metrics.total_tokens > 0);
        assert!(metrics.tpot > Duration::ZERO);
    }

    #[test]
    fn overlap_hides_mask_generation_time() {
        // Use the naive full-scan backend so mask generation is expensive
        // enough that overlapping it with the GPU step is clearly visible.
        let vocab = Arc::new(test_vocabulary(2000));
        let backend: Arc<dyn xg_baselines::ConstrainedBackend> =
            Arc::new(xg_baselines::NaivePdaBackend::new(Arc::clone(&vocab)));
        let reqs: Vec<EngineRequest> = requests(2)
            .into_iter()
            .map(|mut r| {
                r.max_tokens = 16;
                r
            })
            .collect();
        // Use the real (unscaled) per-step GPU time so the serial engine pays
        // mask + GPU while the overlapped engine pays only max(mask, GPU).
        let profile = ModelProfile::llama31_8b_h100();
        // Both engines measure wall-clock time, so a loaded CI machine can
        // momentarily starve the overlapped engine's helper thread; retry a
        // few times and require the speedup to show up at least once.
        let mut last = None;
        for _ in 0..3 {
            let serial = ServingEngine::new(
                Arc::clone(&backend),
                profile.clone(),
                ExecutionMode::Serial,
            )
            .run_batch(&reqs)
            .unwrap()
            .1;
            let overlapped = ServingEngine::new(
                Arc::clone(&backend),
                profile.clone(),
                ExecutionMode::Overlapped,
            )
            .run_batch(&reqs)
            .unwrap()
            .1;
            if overlapped.total_time < serial.total_time {
                return;
            }
            last = Some((overlapped, serial));
        }
        let (overlapped, serial) = last.unwrap();
        panic!(
            "overlapped {:?} vs serial {:?} (mask {:?}, gpu {:?})",
            overlapped.total_time, serial.total_time, serial.mask_time, serial.gpu_time
        );
    }

    #[test]
    fn unconstrained_requests_run_without_grammar() {
        let vocab = Arc::new(test_vocabulary(2000));
        let backend = Arc::new(XGrammarBackend::new(vocab));
        let engine = ServingEngine::new(backend, fast_profile(), ExecutionMode::Serial);
        let req = EngineRequest {
            grammar: None,
            prompt_tokens: 10,
            reference: br#"{"ok": true}"#.to_vec(),
            max_tokens: 100,
        };
        let (results, _) = engine.run_batch(std::slice::from_ref(&req)).unwrap();
        assert!(results[0].completed);
        assert!(!results[0].output.is_empty());
    }
}
