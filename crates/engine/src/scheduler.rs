//! Continuous-batching scheduler: the persistent serving core.
//!
//! [`ServingEngine::run_batch`](crate::ServingEngine::run_batch) used to be a
//! one-shot, fixed-membership batch — every lane joined at step 0 and the
//! call returned when the last lane finished. This module replaces that with
//! the pipeline the paper actually describes (§3.5): a bounded submission
//! queue feeds **admission workers** that compile each request's grammar off
//! the decode hot path (hitting the backend's `GrammarCache` first), a
//! persistent **decode loop** admits compiled lanes into the running batch
//! between steps and retires them on termination, and a pool of **mask
//! workers** fills token bitmasks overlapped with the simulated GPU phase.
//! Each request streams its bytes out through a per-request channel as they
//! are emitted.
//!
//! ```text
//! submit() ──▶ [queue (bounded)] ──▶ admission workers ──▶ [ready (bounded)]
//!                                     compile / cache probe        │
//!                                                                  ▼
//!             mask workers ◀──(MaskJob: session+bitmask)── decode loop
//!                          ──(MaskDone)──▶                  join / step /
//!                                                           retire lanes
//!                                                                  │
//!             StreamingRequest ◀── Admitted / Bytes / Finished ────┘
//! ```
//!
//! Backpressure composes naturally: the submission queue is a bounded
//! channel ([`try_submit`](ContinuousScheduler::try_submit) reports
//! [`SubmitError::Saturated`] instead of blocking), the ready channel holds
//! at most `max_lanes` compiled lanes, and an admission worker blocks on its
//! `send` when the decode loop is full — so a compile storm or a saturated
//! batch stalls admission, not decoding.
//!
//! In [`ExecutionMode::Overlapped`](crate::ExecutionMode::Overlapped) the
//! decode loop double-buffers mask generation: the moment a lane's step-`t`
//! token is accepted, its step-`t+1` mask-fill job is dispatched to the mask
//! workers — so mask fill for step `t+1` overlaps both the remaining lanes'
//! sampling *and* the next simulated GPU step, and the loop only waits on a
//! collect barrier right before it needs the masks. In `Serial` mode the
//! loop dispatches and collects all masks before each GPU step, exposing the
//! full mask wall-clock (the paper's no-overlap baseline) — and, because the
//! whole batch dispatches at once, lanes whose sessions report the same
//! `mask_batch_key` (same compiled grammar, same automaton state) ride one
//! worker job that computes the shared context-independent mask base once
//! and completes every lane from it.
//!
//! Byte parity with the fixed loop is by construction — both paths drive
//! lanes exclusively through [`Lane::start`]/[`Lane::step`], and a lane's
//! bytes depend only on its own request (its seed, reference and
//! constraint), never on batch composition or arrival order. The
//! differential suite in `tests/continuous_batching.rs` proves it.
//!
//! [`Lane::start`]: crate::lane::Lane::start
//! [`Lane::step`]: crate::lane::Lane::step

use std::collections::{HashMap, VecDeque};
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::engine::{
    busy_wait, EngineRequest, ExecutionMode, JumpForwardPolicy, RequestResult, ServingEngine,
};
use crate::lane::{ForcedContext, Lane};
use crate::llm::{LlmRequestState, SimulatedLlm};
use crate::profiles::ModelProfile;
use xg_baselines::{BackendError, BackendSession, ConstrainedBackend};
use xg_core::{GrammarCacheStats, TokenBitmask};
use xg_tokenizer::{SortedVocabulary, Vocabulary};

/// Sizing and worker-count configuration of a [`ContinuousScheduler`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedulerConfig {
    /// Maximum number of lanes decoding concurrently. Compiled requests
    /// beyond this wait in the bounded ready channel (which also holds at
    /// most `max_lanes` entries), stalling admission.
    pub max_lanes: usize,
    /// Capacity of the submission queue. [`submit`] blocks and
    /// [`try_submit`] reports [`SubmitError::Saturated`] when it is full.
    ///
    /// [`submit`]: ContinuousScheduler::submit
    /// [`try_submit`]: ContinuousScheduler::try_submit
    pub queue_capacity: usize,
    /// Number of admission workers compiling grammars off the hot path.
    pub admission_workers: usize,
    /// Number of mask-fill workers. `0` selects the engine's configured mask
    /// parallelism capped at `max_lanes`.
    pub mask_workers: usize,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            max_lanes: 64,
            queue_capacity: 256,
            admission_workers: 2,
            mask_workers: 0,
        }
    }
}

/// One event in a request's stream, in order: one `Admitted`, zero or more
/// `Bytes`, then exactly one of `Finished` / `Failed`.
#[derive(Debug)]
pub enum StreamEvent {
    /// The request left the queue and compiled; it joins the batch next.
    Admitted {
        /// Time spent waiting in the submission queue.
        queue_time: Duration,
        /// Time the admission worker spent compiling the constraint (near
        /// zero on a cache hit).
        compile_time: Duration,
        /// Whether the backend already held a compiled form of the
        /// constraint when the request was admitted.
        cache_hit: bool,
    },
    /// Bytes emitted by one decode step (sampled token bytes plus any
    /// jump-forward-forced continuation, in emission order).
    Bytes(Vec<u8>),
    /// The request finished decoding; terminal.
    Finished {
        /// The complete result, byte-identical to the fixed-batch loop.
        result: RequestResult,
        /// Per-request latency breakdown.
        timing: LaneTiming,
    },
    /// The request's constraint failed to compile; terminal.
    Failed(BackendError),
}

/// Per-request latency breakdown reported with [`StreamEvent::Finished`].
#[derive(Debug, Clone, Copy)]
pub struct LaneTiming {
    /// Time from submission to admission (queue wait).
    pub queue_time: Duration,
    /// Time the admission worker spent compiling the constraint.
    pub compile_time: Duration,
    /// Time from submission to the first emitted bytes (sampled or forced).
    pub ttft: Duration,
    /// Mean decode time per sampled token after the first emission, with
    /// forced-injection time carved out. Zero when the lane sampled at most
    /// one token.
    pub tpot: Duration,
    /// Time from submission to termination.
    pub total_time: Duration,
    /// Whether the constraint was already compiled when the request was
    /// admitted (its compile was a cache hit).
    pub cache_hit: bool,
}

/// A finished request: the result plus its latency breakdown.
#[derive(Debug, Clone)]
pub struct FinishedRequest {
    /// The generation result, byte-identical to the fixed-batch loop.
    pub result: RequestResult,
    /// Per-request latency breakdown.
    pub timing: LaneTiming,
}

/// Handle to one in-flight request: a stream of [`StreamEvent`]s.
#[derive(Debug)]
pub struct StreamingRequest {
    id: u64,
    events: Receiver<StreamEvent>,
}

impl StreamingRequest {
    /// Scheduler-assigned request id (submission order).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Blocks until the next event, or `None` once the stream is exhausted
    /// (after the terminal event, or if the scheduler shut down early).
    pub fn next_event(&self) -> Option<StreamEvent> {
        self.events.recv().ok()
    }

    /// Returns the next event if one is already queued, without blocking.
    pub fn try_next_event(&self) -> Option<StreamEvent> {
        self.events.try_recv().ok()
    }

    /// Drains the stream to its terminal event and returns the finished
    /// request.
    ///
    /// # Errors
    ///
    /// Returns the backend's compile error if the request failed admission,
    /// or a scheduler-shutdown error if the stream ended without a terminal
    /// event.
    pub fn wait(self) -> Result<FinishedRequest, BackendError> {
        while let Some(event) = self.next_event() {
            match event {
                StreamEvent::Admitted { .. } | StreamEvent::Bytes(_) => {}
                StreamEvent::Finished { result, timing } => {
                    return Ok(FinishedRequest { result, timing });
                }
                StreamEvent::Failed(err) => return Err(err),
            }
        }
        Err(BackendError::UnsupportedGrammar {
            backend: "scheduler",
            reason: "scheduler shut down before the request finished".into(),
        })
    }
}

/// Why a submission was not accepted. The request is handed back (boxed, to
/// keep the `Err` variant small) so the caller can retry or shed load.
#[derive(Debug)]
pub enum SubmitError {
    /// The submission queue is full (backpressure); retry later.
    Saturated(Box<EngineRequest>),
    /// The scheduler has been shut down.
    ShutDown(Box<EngineRequest>),
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::Saturated(_) => write!(f, "submission queue is full"),
            SubmitError::ShutDown(_) => write!(f, "scheduler has been shut down"),
        }
    }
}

impl Error for SubmitError {}

/// Aggregate scheduler statistics, captured by
/// [`ContinuousScheduler::metrics`].
#[derive(Debug, Clone)]
pub struct SchedulerMetrics {
    /// Requests accepted into the submission queue.
    pub submitted: u64,
    /// Requests rejected by [`try_submit`](ContinuousScheduler::try_submit)
    /// because the queue was full.
    pub rejected: u64,
    /// Requests admitted (compiled and handed to the decode loop).
    pub admitted: u64,
    /// Requests that finished decoding.
    pub completed: u64,
    /// Requests whose constraint failed to compile.
    pub failed: u64,
    /// Admissions whose constraint was already compiled (cache hits).
    pub cache_hit_admissions: u64,
    /// Queue depth sampled at each admission; mean over samples.
    pub mean_queue_depth: f64,
    /// High-water mark of the submission queue depth.
    pub max_queue_depth: usize,
    /// High-water mark of concurrently decoding lanes.
    pub max_concurrent_lanes: usize,
    /// Decode-loop steps executed (one per batch round, not per lane).
    pub decode_steps: u64,
    /// Tokens sampled across all lanes.
    pub sampled_tokens: u64,
    /// Tokens injected by jump-forward across all lanes.
    pub forced_tokens: u64,
    /// Bytes injected by jump-forward across all lanes.
    pub forced_chars: u64,
    /// Wall clock spent finding and injecting forced text.
    pub forced_time: Duration,
    /// Wall clock the decode loop spent *waiting* on mask collection (in
    /// overlapped mode: the residual the overlap failed to hide).
    pub mask_wait_time: Duration,
    /// CPU time the mask workers spent filling bitmasks (≥ wall wait when
    /// the overlap works).
    pub mask_busy_time: Duration,
    /// Lane mask fills served through a shared mask base (serial mode groups
    /// lanes with equal `mask_batch_key` into one worker job).
    pub batched_mask_lanes: u64,
    /// Wall clock spent in simulated GPU decode steps.
    pub gpu_time: Duration,
    /// Wall clock spent in simulated prefill (paid at lane join).
    pub prefill_time: Duration,
    /// Wall clock of the decode loop while at least one lane was live.
    pub decode_time: Duration,
    /// Wall clock the admission workers spent compiling constraints.
    pub compile_time: Duration,
    /// Number of mask workers serving the decode loop.
    pub mask_workers: usize,
    /// Grammar-cache activity since the scheduler started.
    pub cache: GrammarCacheStats,
}

impl SchedulerMetrics {
    /// Fraction of the decode wall-clock the mask workers were busy,
    /// normalized by worker count. Zero when nothing decoded.
    pub fn mask_worker_utilization(&self) -> f64 {
        let denom = self.mask_workers as f64 * self.decode_time.as_secs_f64();
        if denom <= 0.0 {
            return 0.0;
        }
        self.mask_busy_time.as_secs_f64() / denom
    }

    /// Generated tokens (sampled + forced) per second of decode wall-clock.
    /// Zero when nothing decoded.
    pub fn throughput(&self) -> f64 {
        let secs = self.decode_time.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        (self.sampled_tokens + self.forced_tokens) as f64 / secs
    }
}

/// A request travelling from `submit` to an admission worker.
struct Submission {
    id: u64,
    request: EngineRequest,
    events: Sender<StreamEvent>,
    submitted_at: Instant,
}

/// A compiled request travelling from an admission worker to the decode loop.
struct ReadyLane {
    id: u64,
    events: Sender<StreamEvent>,
    session: Option<Box<dyn BackendSession>>,
    llm_state: LlmRequestState,
    prompt_tokens: usize,
    max_tokens: usize,
    submitted_at: Instant,
    queue_time: Duration,
    compile_time: Duration,
    cache_hit: bool,
}

/// One lane's share of a mask-fill job: ownership of the lane's backend
/// session and bitmask transfers to a mask worker and returns via
/// [`MaskDone`].
struct MaskEntry {
    lane: u64,
    session: Box<dyn BackendSession>,
    mask: TokenBitmask,
}

/// A mask-fill job: one or more lanes whose sessions report the same
/// `mask_batch_key`, so the worker computes the shared (context-independent)
/// mask portion once and completes every lane from it. Single-entry jobs take
/// the ordinary per-lane fill path.
struct MaskJob {
    entries: Vec<MaskEntry>,
}

/// A completed mask-fill job returning to the decode loop.
struct MaskDone {
    lane: u64,
    session: Box<dyn BackendSession>,
    mask: TokenBitmask,
    busy: Duration,
}

struct MaskPoolState {
    jobs: VecDeque<MaskJob>,
    shutdown: bool,
}

/// Work queue shared by the persistent mask workers.
struct MaskPool {
    state: Mutex<MaskPoolState>,
    available: Condvar,
    busy_nanos: AtomicU64,
    batched_lanes: AtomicU64,
}

impl MaskPool {
    fn new() -> Self {
        MaskPool {
            state: Mutex::new(MaskPoolState {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            available: Condvar::new(),
            busy_nanos: AtomicU64::new(0),
            batched_lanes: AtomicU64::new(0),
        }
    }

    fn push(&self, job: MaskJob) {
        let mut state = self.state.lock().expect("mask pool poisoned");
        state.jobs.push_back(job);
        drop(state);
        self.available.notify_one();
    }

    fn shutdown(&self) {
        let mut state = self.state.lock().expect("mask pool poisoned");
        state.shutdown = true;
        drop(state);
        self.available.notify_all();
    }

    fn busy_time(&self) -> Duration {
        Duration::from_nanos(self.busy_nanos.load(Ordering::Relaxed))
    }

    fn batched_lanes(&self) -> u64 {
        self.batched_lanes.load(Ordering::Relaxed)
    }
}

/// Body of one persistent mask worker: pop a job, fill its bitmask(s), send
/// each session and mask back. Multi-lane jobs (same `mask_batch_key`)
/// compute the shared mask base once and complete every lane from it; if the
/// base turns out unavailable (the session advanced into an unbatchable
/// state) the worker falls back to per-lane fills — the result is
/// bit-identical either way. Exits when the pool shuts down and drains, or
/// when the decode loop (the receiver) is gone.
fn mask_worker(pool: &MaskPool, done: &Sender<MaskDone>) {
    loop {
        let MaskJob { mut entries } = {
            let mut state = pool.state.lock().expect("mask pool poisoned");
            loop {
                if let Some(job) = state.jobs.pop_front() {
                    break job;
                }
                if state.shutdown {
                    return;
                }
                state = pool.available.wait(state).expect("mask pool poisoned");
            }
        };
        let start = Instant::now();
        let mut shared_base = None;
        if entries.len() > 1 {
            let mut base = TokenBitmask::new_all_rejected(entries[0].mask.vocab_size());
            if entries[0].session.fill_mask_base(&mut base) {
                pool.batched_lanes
                    .fetch_add(entries.len() as u64, Ordering::Relaxed);
                shared_base = Some(base);
            }
        }
        for entry in &mut entries {
            match &shared_base {
                Some(base) => entry.session.fill_mask_from_base(&mut entry.mask, base),
                None => entry.session.fill_mask(&mut entry.mask),
            }
        }
        let busy = start.elapsed();
        pool.busy_nanos
            .fetch_add(busy.as_nanos() as u64, Ordering::Relaxed);
        let per_entry = busy.div_f64(entries.len() as f64);
        for entry in entries {
            if done
                .send(MaskDone {
                    lane: entry.lane,
                    session: entry.session,
                    mask: entry.mask,
                    busy: per_entry,
                })
                .is_err()
            {
                return;
            }
        }
    }
}

#[derive(Default, Clone)]
struct StatsInner {
    submitted: u64,
    rejected: u64,
    admitted: u64,
    completed: u64,
    failed: u64,
    cache_hit_admissions: u64,
    queue_depth_sum: u64,
    queue_samples: u64,
    max_concurrent_lanes: usize,
    decode_steps: u64,
    sampled_tokens: u64,
    forced_tokens: u64,
    forced_chars: u64,
    forced_time: Duration,
    mask_wait_time: Duration,
    gpu_time: Duration,
    prefill_time: Duration,
    decode_time: Duration,
    compile_time: Duration,
}

/// State shared by the submitter, admission workers and the decode loop.
struct Shared {
    stats: Mutex<StatsInner>,
    queue_depth: AtomicUsize,
    max_queue_depth: AtomicUsize,
}

/// The continuous-batching scheduler: owns the admission workers, the decode
/// loop and the mask workers, started by
/// [`ServingEngine::serve`](crate::ServingEngine::serve).
///
/// Dropping the scheduler (or calling
/// [`shutdown`](ContinuousScheduler::shutdown)) closes the submission queue,
/// lets every in-flight request finish, and joins all worker threads.
#[derive(Debug)]
pub struct ContinuousScheduler {
    submit_tx: Mutex<Option<SyncSender<Submission>>>,
    next_id: AtomicU64,
    shared: Arc<Shared>,
    mask_pool: Arc<MaskPool>,
    mask_workers: usize,
    backend: Arc<dyn ConstrainedBackend>,
    cache_before: GrammarCacheStats,
    admission_handles: Vec<JoinHandle<()>>,
    decode_handle: Option<JoinHandle<()>>,
    mask_handles: Vec<JoinHandle<()>>,
}

impl fmt::Debug for Shared {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Shared")
            .field("queue_depth", &self.queue_depth.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl fmt::Debug for MaskPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MaskPool")
            .field("busy", &self.busy_time())
            .finish_non_exhaustive()
    }
}

impl ContinuousScheduler {
    /// Starts the scheduler's worker threads against `engine`'s backend,
    /// profile, execution mode and jump-forward policy.
    pub(crate) fn start(engine: &ServingEngine, config: SchedulerConfig) -> Self {
        let max_lanes = config.max_lanes.max(1);
        let queue_capacity = config.queue_capacity.max(1);
        let admission_workers = config.admission_workers.max(1);
        let mask_workers = if config.mask_workers == 0 {
            engine.effective_mask_threads(max_lanes)
        } else {
            config.mask_workers
        };

        let backend = Arc::clone(engine.backend());
        let cache_before = backend.cache_stats().unwrap_or_default();
        let shared = Arc::new(Shared {
            stats: Mutex::new(StatsInner::default()),
            queue_depth: AtomicUsize::new(0),
            max_queue_depth: AtomicUsize::new(0),
        });
        let mask_pool = Arc::new(MaskPool::new());

        let (submit_tx, submit_rx) = mpsc::sync_channel::<Submission>(queue_capacity);
        // Bounded at `max_lanes`: an admission worker with a compiled lane
        // in hand blocks here while the batch is full, which in turn fills
        // the submission queue — the backpressure chain.
        let (ready_tx, ready_rx) = mpsc::sync_channel::<ReadyLane>(max_lanes);
        let (mask_done_tx, mask_done_rx) = mpsc::channel::<MaskDone>();

        // ---- Mask workers. ----
        let mask_handles: Vec<JoinHandle<()>> = (0..mask_workers)
            .map(|i| {
                let pool = Arc::clone(&mask_pool);
                let done = mask_done_tx.clone();
                std::thread::Builder::new()
                    .name(format!("xg-mask-{i}"))
                    .spawn(move || mask_worker(&pool, &done))
                    .expect("spawn mask worker")
            })
            .collect();
        drop(mask_done_tx);

        // ---- Admission workers. ----
        let submit_rx = Arc::new(Mutex::new(submit_rx));
        let admission_handles: Vec<JoinHandle<()>> = (0..admission_workers)
            .map(|i| {
                let submissions = Arc::clone(&submit_rx);
                let ready = ready_tx.clone();
                let backend = Arc::clone(&backend);
                let llm = engine.llm().clone();
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("xg-admit-{i}"))
                    .spawn(move || admission_worker(&submissions, &ready, &*backend, &llm, &shared))
                    .expect("spawn admission worker")
            })
            .collect();
        drop(ready_tx);

        // ---- Decode loop. ----
        let decode = DecodeLoop {
            ready: ready_rx,
            mask_done: mask_done_rx,
            mask_pool: Arc::clone(&mask_pool),
            shared: Arc::clone(&shared),
            vocab: Arc::clone(backend.vocabulary()),
            sorted: match engine.jump_forward_policy() {
                JumpForwardPolicy::Engine => Some(engine.sorted_vocabulary()),
                _ => None,
            },
            policy: engine.jump_forward_policy(),
            profile: engine.profile().clone(),
            mode: engine.mode(),
            max_lanes,
        };
        let decode_handle = std::thread::Builder::new()
            .name("xg-decode".into())
            .spawn(move || decode.run())
            .expect("spawn decode loop");

        ContinuousScheduler {
            submit_tx: Mutex::new(Some(submit_tx)),
            next_id: AtomicU64::new(0),
            shared,
            mask_pool,
            mask_workers,
            backend,
            cache_before,
            admission_handles,
            decode_handle: Some(decode_handle),
            mask_handles,
        }
    }

    /// Submits a request, blocking while the submission queue is full.
    ///
    /// # Errors
    ///
    /// Returns [`SubmitError::ShutDown`] if the scheduler has been shut
    /// down.
    pub fn submit(&self, request: EngineRequest) -> Result<StreamingRequest, SubmitError> {
        self.submit_inner(request, true)
    }

    /// Submits a request without blocking.
    ///
    /// # Errors
    ///
    /// Returns [`SubmitError::Saturated`] (handing the request back) when
    /// the queue is full, or [`SubmitError::ShutDown`] after shutdown.
    pub fn try_submit(&self, request: EngineRequest) -> Result<StreamingRequest, SubmitError> {
        self.submit_inner(request, false)
    }

    fn submit_inner(
        &self,
        request: EngineRequest,
        block: bool,
    ) -> Result<StreamingRequest, SubmitError> {
        let tx = {
            let guard = self.submit_tx.lock().expect("submit lock poisoned");
            match guard.as_ref() {
                Some(tx) => tx.clone(),
                None => return Err(SubmitError::ShutDown(Box::new(request))),
            }
        };
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let (events_tx, events_rx) = mpsc::channel();
        let submission = Submission {
            id,
            request,
            events: events_tx,
            submitted_at: Instant::now(),
        };
        let depth = self.shared.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.shared
            .max_queue_depth
            .fetch_max(depth, Ordering::Relaxed);
        let sent = if block {
            tx.send(submission).map_err(|e| e.0)
        } else {
            tx.try_send(submission).map_err(|e| match e {
                TrySendError::Full(s) | TrySendError::Disconnected(s) => s,
            })
        };
        match sent {
            Ok(()) => {
                self.shared.stats.lock().expect("stats poisoned").submitted += 1;
                Ok(StreamingRequest {
                    id,
                    events: events_rx,
                })
            }
            Err(submission) => {
                self.shared.queue_depth.fetch_sub(1, Ordering::Relaxed);
                self.shared.stats.lock().expect("stats poisoned").rejected += 1;
                Err(if block {
                    SubmitError::ShutDown(Box::new(submission.request))
                } else {
                    SubmitError::Saturated(Box::new(submission.request))
                })
            }
        }
    }

    /// Current depth of the submission queue.
    pub fn queue_depth(&self) -> usize {
        self.shared.queue_depth.load(Ordering::Relaxed)
    }

    /// Snapshot of the scheduler's aggregate metrics.
    pub fn metrics(&self) -> SchedulerMetrics {
        let stats = self.shared.stats.lock().expect("stats poisoned").clone();
        let cache = self
            .backend
            .cache_stats()
            .unwrap_or_default()
            .delta_since(&self.cache_before);
        SchedulerMetrics {
            submitted: stats.submitted,
            rejected: stats.rejected,
            admitted: stats.admitted,
            completed: stats.completed,
            failed: stats.failed,
            cache_hit_admissions: stats.cache_hit_admissions,
            mean_queue_depth: if stats.queue_samples == 0 {
                0.0
            } else {
                stats.queue_depth_sum as f64 / stats.queue_samples as f64
            },
            max_queue_depth: self.shared.max_queue_depth.load(Ordering::Relaxed),
            max_concurrent_lanes: stats.max_concurrent_lanes,
            decode_steps: stats.decode_steps,
            sampled_tokens: stats.sampled_tokens,
            forced_tokens: stats.forced_tokens,
            forced_chars: stats.forced_chars,
            forced_time: stats.forced_time,
            mask_wait_time: stats.mask_wait_time,
            mask_busy_time: self.mask_pool.busy_time(),
            batched_mask_lanes: self.mask_pool.batched_lanes(),
            gpu_time: stats.gpu_time,
            prefill_time: stats.prefill_time,
            decode_time: stats.decode_time,
            compile_time: stats.compile_time,
            mask_workers: self.mask_workers,
            cache,
        }
    }

    /// Stops accepting submissions, lets every in-flight request finish, and
    /// joins all worker threads.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        // Closing the submission channel lets the admission workers drain
        // the queue and exit; dropping their ready senders then lets the
        // decode loop finish its live lanes and exit; only then do the mask
        // workers stop.
        *self.submit_tx.lock().expect("submit lock poisoned") = None;
        for handle in self.admission_handles.drain(..) {
            handle.join().expect("admission worker panicked");
        }
        if let Some(handle) = self.decode_handle.take() {
            handle.join().expect("decode loop panicked");
        }
        self.mask_pool.shutdown();
        for handle in self.mask_handles.drain(..) {
            handle.join().expect("mask worker panicked");
        }
    }
}

impl Drop for ContinuousScheduler {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Body of one admission worker: receive a submission, probe the cache,
/// compile the constraint off the hot path, start the simulated-LLM request
/// state, and hand the ready lane to the decode loop (blocking while the
/// batch is full).
fn admission_worker(
    submissions: &Mutex<Receiver<Submission>>,
    ready: &SyncSender<ReadyLane>,
    backend: &dyn ConstrainedBackend,
    llm: &SimulatedLlm,
    shared: &Shared,
) {
    loop {
        // Holding the lock across `recv` is deliberate: it makes the lock
        // double as the "which worker gets the next submission" arbiter, and
        // the senders never take it.
        let submission = {
            let rx = submissions.lock().expect("submission receiver poisoned");
            match rx.recv() {
                Ok(s) => s,
                Err(_) => return,
            }
        };
        let depth = shared.queue_depth.fetch_sub(1, Ordering::Relaxed) - 1;
        {
            let mut stats = shared.stats.lock().expect("stats poisoned");
            stats.queue_depth_sum += depth as u64;
            stats.queue_samples += 1;
        }
        let queue_time = submission.submitted_at.elapsed();
        let cache_hit = submission.request.constraint.is_cached(backend);
        let compile_start = Instant::now();
        let compiled = match submission.request.constraint.compile(backend) {
            Ok(c) => c,
            Err(err) => {
                let mut stats = shared.stats.lock().expect("stats poisoned");
                stats.failed += 1;
                stats.compile_time += compile_start.elapsed();
                drop(stats);
                // Receiver may be gone (caller dropped the handle) — fine.
                let _ = submission.events.send(StreamEvent::Failed(err));
                continue;
            }
        };
        let session = compiled.map(|c| c.new_session());
        let compile_time = compile_start.elapsed();
        let llm_state = llm.start_request(&submission.request.reference, submission.request.seed);
        {
            let mut stats = shared.stats.lock().expect("stats poisoned");
            stats.admitted += 1;
            stats.compile_time += compile_time;
            if cache_hit {
                stats.cache_hit_admissions += 1;
            }
        }
        let _ = submission.events.send(StreamEvent::Admitted {
            queue_time,
            compile_time,
            cache_hit,
        });
        let lane = ReadyLane {
            id: submission.id,
            events: submission.events,
            session,
            llm_state,
            prompt_tokens: submission.request.prompt_tokens,
            max_tokens: submission.request.max_tokens,
            submitted_at: submission.submitted_at,
            queue_time,
            compile_time,
            cache_hit,
        };
        if ready.send(lane).is_err() {
            // Decode loop is gone; nothing more to admit.
            return;
        }
    }
}

/// One lane live in the decode loop.
struct ActiveLane {
    id: u64,
    lane: Lane,
    events: Sender<StreamEvent>,
    /// The lane's bitmask when not in flight to a mask worker.
    mask: Option<TokenBitmask>,
    mask_in_flight: bool,
    submitted_at: Instant,
    queue_time: Duration,
    compile_time: Duration,
    cache_hit: bool,
    /// Time from submission to the first emitted bytes.
    first_emit: Option<Duration>,
}

/// The persistent decode loop: admits ready lanes between steps, drives each
/// step through [`Lane::step`], overlaps mask fill with the simulated GPU
/// phase in overlapped mode, streams emitted bytes, and retires finished
/// lanes.
struct DecodeLoop {
    ready: Receiver<ReadyLane>,
    mask_done: Receiver<MaskDone>,
    mask_pool: Arc<MaskPool>,
    shared: Arc<Shared>,
    vocab: Arc<Vocabulary>,
    sorted: Option<Arc<SortedVocabulary>>,
    policy: JumpForwardPolicy,
    profile: ModelProfile,
    mode: ExecutionMode,
    max_lanes: usize,
}

impl DecodeLoop {
    fn run(self) {
        let ctx = ForcedContext {
            policy: self.policy,
            sorted: self.sorted.as_deref(),
            vocab: &self.vocab,
        };
        let mut lanes: Vec<ActiveLane> = Vec::with_capacity(self.max_lanes);
        let mut in_flight = 0usize;
        let mut ready_open = true;

        loop {
            // ---- Join phase: admit compiled lanes into the batch. ----
            if lanes.is_empty() {
                if !ready_open {
                    return;
                }
                // Idle: block until a request arrives or admission closes.
                match self.ready.recv() {
                    Ok(lane) => self.join(lane, &mut lanes, &ctx, &mut in_flight),
                    Err(_) => return,
                }
            }
            while ready_open && lanes.len() < self.max_lanes {
                match self.ready.try_recv() {
                    Ok(lane) => self.join(lane, &mut lanes, &ctx, &mut in_flight),
                    Err(mpsc::TryRecvError::Empty) => break,
                    Err(mpsc::TryRecvError::Disconnected) => {
                        ready_open = false;
                    }
                }
            }
            if lanes.is_empty() {
                continue;
            }

            // ---- One decode step for the whole batch. ----
            let step_start = Instant::now();
            let gpu_step = self.profile.decode_step_time(lanes.len());
            let mut mask_wait = Duration::ZERO;
            match self.mode {
                ExecutionMode::Serial => {
                    // No overlap: dispatch and collect every mask, exposing
                    // the full mask wall-clock, then run the GPU step. The
                    // whole batch dispatches at once, so lanes sharing a
                    // mask-batch key ride one job with a shared mask base.
                    dispatch_grouped(&self.mask_pool, &mut lanes, &mut in_flight, &self.vocab);
                    let wait = Instant::now();
                    collect_all(&self.mask_done, &mut lanes, &mut in_flight);
                    mask_wait += wait.elapsed();
                    busy_wait(gpu_step);
                }
                ExecutionMode::Overlapped => {
                    // Masks were dispatched as each lane's previous token
                    // was accepted (and at join); they fill while the GPU
                    // works. Only the residual shows up as wait time.
                    busy_wait(gpu_step);
                    let wait = Instant::now();
                    collect_all(&self.mask_done, &mut lanes, &mut in_flight);
                    mask_wait += wait.elapsed();
                }
            }

            // ---- Sampling phase. ----
            for al in lanes.iter_mut() {
                let mask = if al.lane.is_constrained() {
                    Some(al.mask.as_ref().expect("constrained lane holds its mask"))
                } else {
                    None
                };
                let emitted_from = al.lane.step(mask, &ctx);
                if al.lane.output.len() > emitted_from {
                    if al.first_emit.is_none() {
                        al.first_emit = Some(al.submitted_at.elapsed());
                    }
                    let _ = al
                        .events
                        .send(StreamEvent::Bytes(al.lane.output[emitted_from..].to_vec()));
                }
                if matches!(self.mode, ExecutionMode::Overlapped) && !al.lane.finished {
                    // Double-buffering: this lane's step-t+1 mask starts
                    // filling while the remaining lanes still sample step t
                    // (and through the next GPU step).
                    dispatch(&self.mask_pool, al, &mut in_flight, &self.vocab);
                }
            }

            // ---- Accounting, then retire finished lanes. ----
            {
                let mut stats = self.shared.stats.lock().expect("stats poisoned");
                stats.decode_steps += 1;
                stats.gpu_time += gpu_step;
                stats.mask_wait_time += mask_wait;
                stats.decode_time += step_start.elapsed();
            }
            let mut i = 0;
            while i < lanes.len() {
                if lanes[i].lane.finished {
                    let lane = lanes.swap_remove(i);
                    self.finish(lane);
                } else {
                    i += 1;
                }
            }
        }
    }

    /// Admits one compiled lane: pay its prefill, run the lane-start
    /// jump-forward pass, stream any forced prefix, and (in overlapped mode)
    /// dispatch its first mask fill.
    fn join(
        &self,
        ready: ReadyLane,
        lanes: &mut Vec<ActiveLane>,
        ctx: &ForcedContext<'_>,
        in_flight: &mut usize,
    ) {
        let prefill = self.profile.prefill_time(ready.prompt_tokens);
        busy_wait(prefill);
        {
            let mut stats = self.shared.stats.lock().expect("stats poisoned");
            stats.prefill_time += prefill;
        }
        let mut lane = Lane::new(ready.session, ready.llm_state, ready.max_tokens);
        lane.start(ctx);
        let mut al = ActiveLane {
            id: ready.id,
            lane,
            events: ready.events,
            mask: Some(TokenBitmask::new_all_rejected(self.vocab.len())),
            mask_in_flight: false,
            submitted_at: ready.submitted_at,
            queue_time: ready.queue_time,
            compile_time: ready.compile_time,
            cache_hit: ready.cache_hit,
            first_emit: None,
        };
        if !al.lane.output.is_empty() {
            // The lane-start jump-forward already forced a prefix.
            al.first_emit = Some(al.submitted_at.elapsed());
            let _ = al.events.send(StreamEvent::Bytes(al.lane.output.clone()));
        }
        if al.lane.finished {
            // The constraint forced the entire output (or the cap is 0).
            self.finish(al);
            return;
        }
        if matches!(self.mode, ExecutionMode::Overlapped) {
            dispatch(&self.mask_pool, &mut al, in_flight, &self.vocab);
        }
        lanes.push(al);
        let mut stats = self.shared.stats.lock().expect("stats poisoned");
        stats.max_concurrent_lanes = stats.max_concurrent_lanes.max(lanes.len());
    }

    /// Retires one finished lane: compute its timing, commit its counters,
    /// and send the terminal event.
    fn finish(&self, al: ActiveLane) {
        debug_assert!(!al.mask_in_flight, "retiring a lane with a mask in flight");
        let total_time = al.submitted_at.elapsed();
        let ttft = al.first_emit.unwrap_or(total_time);
        let lane = al.lane;
        let tpot = if lane.sampled_tokens > 1 {
            total_time
                .saturating_sub(ttft)
                .saturating_sub(lane.forced_time)
                .div_f64((lane.sampled_tokens - 1) as f64)
        } else {
            Duration::ZERO
        };
        {
            let mut stats = self.shared.stats.lock().expect("stats poisoned");
            stats.completed += 1;
            stats.sampled_tokens += lane.sampled_tokens as u64;
            stats.forced_tokens += lane.forced_tokens as u64;
            stats.forced_chars += lane.forced_chars as u64;
            stats.forced_time += lane.forced_time;
        }
        let result = RequestResult {
            output: lane.output,
            tokens: lane.sampled_tokens,
            jump_forward_tokens: lane.forced_tokens,
            jump_forward_chars: lane.forced_chars,
            completed: lane.completed,
        };
        let timing = LaneTiming {
            queue_time: al.queue_time,
            compile_time: al.compile_time,
            ttft,
            tpot,
            total_time,
            cache_hit: al.cache_hit,
        };
        let _ = al.events.send(StreamEvent::Finished { result, timing });
    }
}

/// Sends a lane's session and bitmask to the mask workers. No-op for
/// unconstrained or finished lanes and when a fill is already in flight.
fn dispatch(pool: &MaskPool, al: &mut ActiveLane, in_flight: &mut usize, vocab: &Vocabulary) {
    if al.mask_in_flight || al.lane.finished || !al.lane.is_constrained() {
        return;
    }
    let session = al
        .lane
        .session
        .take()
        .expect("constrained lane holds a session");
    let mask = al
        .mask
        .take()
        .unwrap_or_else(|| TokenBitmask::new_all_rejected(vocab.len()));
    pool.push(MaskJob {
        entries: vec![MaskEntry {
            lane: al.id,
            session,
            mask,
        }],
    });
    al.mask_in_flight = true;
    *in_flight += 1;
}

/// Serial-mode dispatch for a whole batch round: lanes whose sessions report
/// the same `mask_batch_key` (same compiled grammar, same automaton state —
/// e.g. many requests of one grammar right after join) are dispatched as one
/// job, so a worker computes the shared mask base once and completes every
/// lane from it. Keyless lanes go out as ordinary single-lane jobs.
fn dispatch_grouped(
    pool: &MaskPool,
    lanes: &mut [ActiveLane],
    in_flight: &mut usize,
    vocab: &Vocabulary,
) {
    let mut groups: HashMap<u64, Vec<MaskEntry>> = HashMap::new();
    for al in lanes.iter_mut() {
        if al.mask_in_flight || al.lane.finished || !al.lane.is_constrained() {
            continue;
        }
        let key = al
            .lane
            .session
            .as_ref()
            .and_then(|session| session.mask_batch_key());
        let session = al
            .lane
            .session
            .take()
            .expect("constrained lane holds a session");
        let mask = al
            .mask
            .take()
            .unwrap_or_else(|| TokenBitmask::new_all_rejected(vocab.len()));
        let entry = MaskEntry {
            lane: al.id,
            session,
            mask,
        };
        al.mask_in_flight = true;
        *in_flight += 1;
        match key {
            Some(key) => groups.entry(key).or_default().push(entry),
            None => pool.push(MaskJob {
                entries: vec![entry],
            }),
        }
    }
    for entries in groups.into_values() {
        pool.push(MaskJob { entries });
    }
}

/// Collect barrier: receives every in-flight mask result, restoring each
/// lane's session and freshly filled bitmask.
fn collect_all(done: &Receiver<MaskDone>, lanes: &mut [ActiveLane], in_flight: &mut usize) {
    while *in_flight > 0 {
        let result = done.recv().expect("mask workers outlive the decode loop");
        let al = lanes
            .iter_mut()
            .find(|l| l.id == result.lane)
            .expect("mask result for a live lane");
        al.lane.session = Some(result.session);
        al.mask = Some(result.mask);
        al.mask_in_flight = false;
        let _ = result.busy;
        *in_flight -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{LaneConstraint, ServingEngine};
    use crate::profiles::ModelProfile;
    use std::sync::Arc;
    use xg_baselines::XGrammarBackend;
    use xg_grammar::parse_ebnf;
    use xg_tokenizer::test_vocabulary;

    fn engine(mode: ExecutionMode) -> ServingEngine {
        let vocab = Arc::new(test_vocabulary(600));
        let backend = Arc::new(XGrammarBackend::new(vocab));
        ServingEngine::new(backend, ModelProfile::llama31_8b_h100().scaled(0.01), mode)
    }

    fn request(seed: u64) -> EngineRequest {
        EngineRequest {
            constraint: LaneConstraint::Grammar(
                parse_ebnf(r#"root ::= "{\"ok\": " ("true" | "false") "}""#, "root").unwrap(),
            ),
            prompt_tokens: 4,
            reference: br#"{"ok": true}"#.to_vec(),
            max_tokens: 32,
            seed,
        }
    }

    #[test]
    fn streams_admission_bytes_and_finish_in_order() {
        let engine = engine(ExecutionMode::Overlapped);
        let scheduler = engine.serve(SchedulerConfig::default());
        let handle = scheduler.submit(request(0)).unwrap();

        let mut saw_admitted = false;
        let mut streamed = Vec::new();
        let finished = loop {
            match handle.next_event().expect("stream ended early") {
                StreamEvent::Admitted { cache_hit, .. } => {
                    assert!(!saw_admitted, "exactly one Admitted event");
                    assert!(!cache_hit, "first compile of this grammar");
                    saw_admitted = true;
                }
                StreamEvent::Bytes(bytes) => {
                    assert!(saw_admitted, "Bytes only after Admitted");
                    streamed.extend_from_slice(&bytes);
                }
                StreamEvent::Finished { result, timing } => {
                    assert!(saw_admitted);
                    break (result, timing);
                }
                StreamEvent::Failed(err) => panic!("unexpected failure: {err}"),
            }
        };
        let (result, timing) = finished;
        assert_eq!(streamed, result.output, "streamed bytes equal the result");
        assert_eq!(result.output, br#"{"ok": true}"#.to_vec());
        assert!(result.completed);
        assert!(timing.ttft <= timing.total_time);

        let metrics = scheduler.metrics();
        assert_eq!(metrics.submitted, 1);
        assert_eq!(metrics.admitted, 1);
        assert_eq!(metrics.completed, 1);
        scheduler.shutdown();
    }

    #[test]
    fn try_submit_saturates_under_backpressure() {
        let engine = engine(ExecutionMode::Serial);
        // One lane, one queue slot: the pipeline holds at most one decoding
        // lane, one ready lane, one submission in an admission worker's hand
        // and one queued submission — a rapid burst beyond that must bounce.
        let scheduler = engine.serve(SchedulerConfig {
            max_lanes: 1,
            queue_capacity: 1,
            admission_workers: 1,
            mask_workers: 1,
        });
        let mut handles = Vec::new();
        let mut saturated = 0;
        for seed in 0..12 {
            match scheduler.try_submit(request(seed)) {
                Ok(handle) => handles.push(handle),
                Err(SubmitError::Saturated(req)) => {
                    assert_eq!(req.seed, seed, "the request is handed back");
                    saturated += 1;
                }
                Err(SubmitError::ShutDown(_)) => panic!("scheduler is live"),
            }
        }
        assert!(saturated > 0, "a rapid burst must hit backpressure");
        for handle in handles {
            let done = handle.wait().expect("accepted requests finish");
            assert_eq!(done.result.output, br#"{"ok": true}"#.to_vec());
        }
        let metrics = scheduler.metrics();
        assert_eq!(metrics.rejected, saturated);
        assert_eq!(metrics.completed + metrics.failed, metrics.admitted);
        scheduler.shutdown();
    }

    #[test]
    fn serial_mode_batches_lanes_with_equal_mask_keys() {
        // Many concurrent requests of one grammar: lanes joining in the same
        // round march in lockstep (the simulated LLM follows the reference),
        // so serial-mode rounds dispatch them as one shared-base job. The
        // outputs must stay byte-identical to solo decoding.
        let engine = engine(ExecutionMode::Serial);
        let scheduler = engine.serve(SchedulerConfig {
            admission_workers: 1,
            ..SchedulerConfig::default()
        });
        let handles: Vec<_> = (0..8)
            .map(|seed| scheduler.submit(request(seed)).unwrap())
            .collect();
        for handle in handles {
            let done = handle.wait().expect("requests finish");
            assert_eq!(done.result.output, br#"{"ok": true}"#.to_vec());
            assert!(done.result.completed);
        }
        let metrics = scheduler.metrics();
        assert_eq!(metrics.completed, 8);
        assert!(
            metrics.batched_mask_lanes > 0,
            "lockstep lanes must share mask bases (got {} batched fills)",
            metrics.batched_mask_lanes
        );
        scheduler.shutdown();
    }

    #[test]
    fn idle_scheduler_shuts_down_cleanly() {
        let engine = engine(ExecutionMode::Serial);
        let scheduler = engine.serve(SchedulerConfig::default());
        let metrics = scheduler.metrics();
        assert_eq!(metrics.submitted, 0);
        scheduler.shutdown();
    }

    #[test]
    fn cache_hit_admission_is_reported() {
        let engine = engine(ExecutionMode::Overlapped);
        let scheduler = engine.serve(SchedulerConfig::default());
        scheduler.submit(request(0)).unwrap().wait().unwrap();
        let done = scheduler.submit(request(1)).unwrap().wait().unwrap();
        assert!(
            done.timing.cache_hit,
            "second compile of the same grammar hits the cache"
        );
        let metrics = scheduler.metrics();
        assert_eq!(metrics.cache_hit_admissions, 1);
        assert_eq!(metrics.cache.hits, 1);
        assert_eq!(metrics.cache.misses, 1);
        scheduler.shutdown();
    }
}
