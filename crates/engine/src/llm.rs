//! Simulated LLM: a deterministic token proposer standing in for the real
//! model's sampler.
//!
//! The grammar engine never looks at logits; it only needs *some* next-token
//! choice to constrain. The simulated LLM therefore proposes, at each step,
//! the token that greedily continues a *reference output* (taken from the
//! dataset), optionally corrupted to mimic the failure modes the paper
//! reports for unconstrained generation (§4.4): explanatory prose around the
//! structured answer and wrong value types. The sampler then either takes the
//! proposal as-is (unconstrained) or picks the best allowed token under the
//! grammar mask (constrained decoding).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

use xg_core::TokenBitmask;
use xg_tokenizer::{TokenId, Vocabulary};

/// Controls how often the unconstrained model misbehaves.
#[derive(Debug, Clone)]
pub struct LlmBehavior {
    /// Probability of wrapping the structured answer in explanatory prose.
    pub prose_probability: f64,
    /// Probability of emitting a wrong value type (e.g. quoting a number).
    pub type_error_probability: f64,
    /// RNG seed (per-request seeds are derived from it).
    pub seed: u64,
}

impl Default for LlmBehavior {
    fn default() -> Self {
        LlmBehavior {
            // Calibrated so that roughly 60% of function-calling outputs are
            // directly parseable without constraints, matching Table 4's 62%.
            prose_probability: 0.25,
            type_error_probability: 0.20,
            seed: 0xced,
        }
    }
}

/// A simulated LLM bound to a vocabulary.
#[derive(Debug, Clone)]
pub struct SimulatedLlm {
    vocab: Arc<Vocabulary>,
    behavior: LlmBehavior,
    /// Tokens grouped by their first byte, so greedy proposal only scans the
    /// tokens that can possibly match.
    first_byte_index: Arc<Vec<Vec<TokenId>>>,
}

impl SimulatedLlm {
    /// Creates a simulated LLM.
    pub fn new(vocab: Arc<Vocabulary>, behavior: LlmBehavior) -> Self {
        let mut index: Vec<Vec<TokenId>> = vec![Vec::new(); 256];
        for (token, bytes) in vocab.iter() {
            if !vocab.is_special(token) {
                if let Some(&first) = bytes.first() {
                    index[first as usize].push(token);
                }
            }
        }
        SimulatedLlm {
            vocab,
            behavior,
            first_byte_index: Arc::new(index),
        }
    }

    /// The vocabulary.
    pub fn vocabulary(&self) -> &Arc<Vocabulary> {
        &self.vocab
    }

    /// Creates the per-request generation state for a reference output.
    /// `request_seed` individualizes the injected errors per request.
    pub fn start_request(&self, reference: &[u8], request_seed: u64) -> LlmRequestState {
        let mut rng = SmallRng::seed_from_u64(self.behavior.seed ^ request_seed);
        let mut intended = reference.to_vec();
        if rng.gen_bool(self.behavior.type_error_probability) {
            intended = inject_type_error(&intended);
        }
        if rng.gen_bool(self.behavior.prose_probability) {
            let mut wrapped = b"Sure! Here is the JSON you asked for:\n".to_vec();
            wrapped.extend_from_slice(&intended);
            wrapped.extend_from_slice(b"\nLet me know if you need anything else.");
            intended = wrapped;
        }
        LlmRequestState {
            vocab: Arc::clone(&self.vocab),
            first_byte_index: Arc::clone(&self.first_byte_index),
            intended,
            position: 0,
        }
    }
}

/// Finds the first occurrence of `needle` inside `haystack`.
fn find_subslice(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    if needle.is_empty() || haystack.len() < needle.len() {
        return None;
    }
    haystack
        .windows(needle.len())
        .position(|window| window == needle)
}

/// Wraps a quoted string around the first bare integer of a JSON document
/// (a "wrong type" mistake), or appends a dangling brace when there is none.
fn inject_type_error(reference: &[u8]) -> Vec<u8> {
    let text = String::from_utf8_lossy(reference);
    // Find a `: <digits>` fragment and drop the closing context so the value
    // becomes syntactically broken (e.g. `"age": 30` -> `"age": 30"`).
    if let Some(pos) = text.find(": ") {
        let mut out = reference.to_vec();
        let insert_at = pos + 2;
        out.insert(insert_at, b'"');
        return out;
    }
    let mut out = reference.to_vec();
    out.push(b'}');
    out
}

/// Per-request state: the byte string the model "wants" to produce and the
/// current position within it.
#[derive(Debug, Clone)]
pub struct LlmRequestState {
    vocab: Arc<Vocabulary>,
    first_byte_index: Arc<Vec<Vec<TokenId>>>,
    intended: Vec<u8>,
    position: usize,
}

impl LlmRequestState {
    /// The full byte string the unconstrained model intends to produce.
    pub fn intended_output(&self) -> &[u8] {
        &self.intended
    }

    /// Greedily proposes the next token: the longest vocabulary token that
    /// matches the upcoming bytes of the intended output, or EOS when the
    /// intended output is exhausted.
    pub fn propose(&self) -> TokenId {
        if self.position >= self.intended.len() {
            return self.vocab.eos().expect("vocabulary has an EOS token");
        }
        let remaining = &self.intended[self.position..];
        let mut best: Option<TokenId> = None;
        let mut best_len = 0usize;
        for &token in &self.first_byte_index[remaining[0] as usize] {
            let bytes = self.vocab.token_bytes(token);
            if bytes.len() > best_len && remaining.starts_with(bytes) {
                best = Some(token);
                best_len = bytes.len();
            }
        }
        best.expect("byte-fallback tokens guarantee a match")
    }

    /// Chooses the next token under a grammar mask, modelling how a greedy
    /// decoder behaves when its top choice is masked out:
    ///
    /// 1. the unconstrained proposal, if allowed;
    /// 2. the longest allowed token that continues the intended output;
    /// 3. the allowed token that occurs *earliest* in the remaining intended
    ///    output (the model "skips" forced-away text such as a prose
    ///    preamble and resumes from there);
    /// 4. the first allowed non-whitespace token;
    /// 5. the first allowed token.
    pub fn propose_constrained(&self, mask: &TokenBitmask) -> Option<TokenId> {
        let proposal = self.propose();
        if mask.is_allowed(proposal) {
            return Some(proposal);
        }
        let remaining = if self.position < self.intended.len() {
            &self.intended[self.position..]
        } else {
            &[]
        };
        // 2. Longest allowed continuation of the intention.
        let mut best: Option<TokenId> = None;
        let mut best_len = 0usize;
        for token in mask.allowed_tokens() {
            let bytes = self.vocab.token_bytes(token);
            if !remaining.is_empty() && remaining.starts_with(bytes) && bytes.len() > best_len {
                best = Some(token);
                best_len = bytes.len();
            }
        }
        if best.is_some() {
            return best;
        }
        // 3. Allowed token occurring earliest (then longest) later in the
        //    intention.
        let mut resync: Option<(usize, usize, TokenId)> = None; // (offset, -len, token)
        for token in mask.allowed_tokens() {
            let bytes = self.vocab.token_bytes(token);
            if bytes.is_empty() || bytes.iter().all(|b| b.is_ascii_whitespace()) {
                continue;
            }
            if let Some(offset) = find_subslice(remaining, bytes) {
                let candidate = (offset, usize::MAX - bytes.len(), token);
                if resync.map(|r| candidate < r).unwrap_or(true) {
                    resync = Some(candidate);
                }
            }
        }
        if let Some((_, _, token)) = resync {
            return Some(token);
        }
        // 4./5. Deterministic fallback.
        mask.allowed_tokens()
            .find(|t| {
                let bytes = self.vocab.token_bytes(*t);
                !bytes.iter().all(|b| b.is_ascii_whitespace())
            })
            .or_else(|| mask.allowed_tokens().next())
    }

    /// Records that `token` was emitted, advancing the intended-output cursor
    /// when the token matches it (otherwise the cursor is left unchanged and
    /// the model keeps trying to steer back towards its intention).
    pub fn advance(&mut self, token: TokenId) {
        if Some(token) == self.vocab.eos() {
            self.position = self.intended.len();
            return;
        }
        let bytes = self.vocab.token_bytes(token);
        let remaining = &self.intended[self.position.min(self.intended.len())..];
        if remaining.starts_with(bytes) {
            self.position += bytes.len();
            return;
        }
        // The constrained decoder forced different text (e.g. it skipped a
        // prose preamble). Re-condition the intention on the forced prefix by
        // jumping to its next occurrence, mimicking how a real model keeps
        // producing coherent content after a forced token.
        if let Some(offset) = find_subslice(remaining, bytes) {
            self.position += offset + bytes.len();
        }
    }

    /// Records that `bytes` were emitted without sampling (jump-forward
    /// decoding): the cursor advances over them if they match the intention,
    /// re-synchronizing like [`LlmRequestState::advance`] otherwise.
    pub fn advance_bytes(&mut self, bytes: &[u8]) {
        if bytes.is_empty() {
            return;
        }
        let remaining = &self.intended[self.position.min(self.intended.len())..];
        if remaining.starts_with(bytes) {
            self.position += bytes.len();
        } else if let Some(offset) = find_subslice(remaining, bytes) {
            self.position += offset + bytes.len();
        }
    }

    /// Returns `true` if the intended output has been fully emitted.
    pub fn finished(&self) -> bool {
        self.position >= self.intended.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xg_tokenizer::test_vocabulary;

    fn clean_llm(vocab: Arc<Vocabulary>) -> SimulatedLlm {
        SimulatedLlm::new(
            vocab,
            LlmBehavior {
                prose_probability: 0.0,
                type_error_probability: 0.0,
                seed: 1,
            },
        )
    }

    #[test]
    fn unconstrained_generation_reproduces_reference() {
        let vocab = Arc::new(test_vocabulary(800));
        let llm = clean_llm(Arc::clone(&vocab));
        let reference = br#"{"name": "alice", "age": 30}"#;
        let mut state = llm.start_request(reference, 7);
        let mut out = Vec::new();
        loop {
            let token = state.propose();
            if Some(token) == vocab.eos() {
                break;
            }
            out.extend_from_slice(vocab.token_bytes(token));
            state.advance(token);
        }
        assert_eq!(out, reference.to_vec());
    }

    #[test]
    fn error_injection_produces_invalid_json() {
        let vocab = Arc::new(test_vocabulary(800));
        let llm = SimulatedLlm::new(
            Arc::clone(&vocab),
            LlmBehavior {
                prose_probability: 1.0,
                type_error_probability: 1.0,
                seed: 3,
            },
        );
        let state = llm.start_request(br#"{"age": 30}"#, 1);
        let intended = state.intended_output();
        assert!(serde_json::from_slice::<serde_json::Value>(intended).is_err());
    }

    #[test]
    fn constrained_proposal_respects_mask() {
        let vocab = Arc::new(test_vocabulary(800));
        let llm = clean_llm(Arc::clone(&vocab));
        let state = llm.start_request(b"hello", 0);
        let mut mask = TokenBitmask::new_all_rejected(vocab.len());
        // Only allow the byte token `h` and an unrelated token.
        let h = vocab.iter().find(|(_, t)| *t == b"h").unwrap().0;
        let z = vocab.iter().find(|(_, t)| *t == b"z").unwrap().0;
        mask.allow(z);
        mask.allow(h);
        let chosen = state.propose_constrained(&mask).unwrap();
        assert_eq!(chosen, h);
    }

    #[test]
    fn deterministic_per_seed() {
        let vocab = Arc::new(test_vocabulary(800));
        let llm = SimulatedLlm::new(Arc::clone(&vocab), LlmBehavior::default());
        let a = llm.start_request(br#"{"x": 1}"#, 42);
        let b = llm.start_request(br#"{"x": 1}"#, 42);
        assert_eq!(a.intended_output(), b.intended_output());
    }
}
