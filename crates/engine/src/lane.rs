//! Per-lane decode state shared by the fixed-batch reference loop and the
//! continuous-batching scheduler.
//!
//! Byte parity between [`ServingEngine::run_batch_fixed`] and the
//! [`ContinuousScheduler`] is guaranteed *by construction*: both drive every
//! lane through [`Lane::step`] (and [`Lane::start`] for the lane-start
//! jump-forward pass), so the sampling order, EOS handling, token-cap
//! accounting and forced-injection budgeting cannot drift between the two
//! serving paths. A lane is self-contained — its simulated-LLM state is
//! seeded from [`EngineRequest::seed`](crate::EngineRequest::seed) and its
//! backend session sees only this lane's tokens — so the bytes a lane emits
//! do not depend on which other lanes share the batch or on when the lane
//! joined it.
//!
//! [`ServingEngine::run_batch_fixed`]: crate::ServingEngine::run_batch_fixed
//! [`ContinuousScheduler`]: crate::ContinuousScheduler

use std::time::{Duration, Instant};

use crate::engine::JumpForwardPolicy;
use crate::llm::LlmRequestState;
use xg_baselines::BackendSession;
use xg_core::TokenBitmask;
use xg_tokenizer::{SortedVocabulary, Vocabulary};

/// Shared forced-injection context of one serving run: the policy, the
/// re-tokenization index (`Engine` policy only) and the vocabulary.
pub(crate) struct ForcedContext<'a> {
    pub policy: JumpForwardPolicy,
    pub sorted: Option<&'a SortedVocabulary>,
    pub vocab: &'a Vocabulary,
}

/// One decode lane: the backend session (None for unconstrained lanes), the
/// simulated model's request state, the accumulated output and the token
/// accounting shared by every serving path.
pub(crate) struct Lane {
    /// Backend session driving the constraint; `None` = unconstrained.
    pub session: Option<Box<dyn BackendSession>>,
    /// Simulated-LLM request state (seeded per request).
    pub llm_state: LlmRequestState,
    /// Emitted bytes, sampled and forced, in emission order.
    pub output: Vec<u8>,
    /// Hard cap on generated tokens (sampled + forced).
    pub max_tokens: usize,
    /// Sampled tokens so far (each paid a GPU decoding step).
    pub sampled_tokens: usize,
    /// Tokens injected by engine-level jump-forward.
    pub forced_tokens: usize,
    /// Bytes injected by jump-forward (`Matcher` and `Engine` policies).
    pub forced_chars: usize,
    /// Wall clock spent finding, re-tokenizing and injecting forced text.
    pub forced_time: Duration,
    /// The lane stopped decoding (successfully or not).
    pub finished: bool,
    /// The lane ended *successfully*: EOS was accepted, or an unconstrained
    /// lane emitted its full intention — as opposed to dying on the token
    /// cap, a stuck mask, or a constraint violation.
    pub completed: bool,
}

impl Lane {
    /// Creates a fresh lane.
    pub fn new(
        session: Option<Box<dyn BackendSession>>,
        llm_state: LlmRequestState,
        max_tokens: usize,
    ) -> Self {
        Lane {
            session,
            llm_state,
            output: Vec::new(),
            max_tokens,
            sampled_tokens: 0,
            forced_tokens: 0,
            forced_chars: 0,
            forced_time: Duration::ZERO,
            finished: false,
            completed: false,
        }
    }

    /// Returns `true` if the lane needs token masks.
    pub fn is_constrained(&self) -> bool {
        self.session.is_some()
    }

    /// Lane-start jump-forward: a constraint may force a prefix before the
    /// first token is ever sampled (e.g. `{"` and the first required key of
    /// a JSON schema). Must run before the lane's first mask is built so the
    /// first sampled token already continues the forced text. No-op under
    /// [`JumpForwardPolicy::Off`] and on unconstrained lanes.
    pub fn start(&mut self, ctx: &ForcedContext<'_>) {
        if self.finished || matches!(ctx.policy, JumpForwardPolicy::Off) || self.session.is_none() {
            return;
        }
        if self.inject_forced(ctx) {
            self.finished = true;
        }
    }

    /// Runs one sampling step for this lane: propose under `mask` (which must
    /// be `Some` exactly when the lane is constrained), accept, advance the
    /// simulated model, enforce the token cap and run the post-token forced
    /// injection. Returns the byte offset in [`output`](Self::output) where
    /// this step's emission began (`output[offset..]` is the step's newly
    /// emitted text — empty when the lane finished without emitting).
    pub fn step(&mut self, mask: Option<&TokenBitmask>, ctx: &ForcedContext<'_>) -> usize {
        let emitted_from = self.output.len();
        if self.finished {
            return emitted_from;
        }
        let token = match &mut self.session {
            Some(_) => {
                let mask = mask.expect("constrained lane steps with a mask");
                match self.llm_state.propose_constrained(mask) {
                    Some(t) => t,
                    None => {
                        // No token is allowed: the structure is stuck (should
                        // not happen); the lane dies without completing.
                        self.finished = true;
                        return emitted_from;
                    }
                }
            }
            None => self.llm_state.propose(),
        };
        if Some(token) == ctx.vocab.eos() {
            self.finished = true;
            self.completed = match &mut self.session {
                Some(session) => session.accept_token(token),
                None => true,
            };
            return emitted_from;
        }
        if let Some(session) = &mut self.session {
            if !session.accept_token(token) {
                // The sampled token violated the constraint: the lane dies
                // without completing.
                self.finished = true;
                return emitted_from;
            }
        }
        self.output.extend_from_slice(ctx.vocab.token_bytes(token));
        self.llm_state.advance(token);
        self.sampled_tokens += 1;
        if self.sampled_tokens + self.forced_tokens >= self.max_tokens {
            // Token cap reached: finished, but not `completed`.
            self.finished = true;
        }
        // After every accepted token the constraint may force the next
        // stretch of text (a key name just became unambiguous, an end tag is
        // due): inject it now, without sampling, so the next round's mask and
        // proposal already start after it.
        if !self.finished
            && !matches!(ctx.policy, JumpForwardPolicy::Off)
            && self.session.is_some()
            && self.inject_forced(ctx)
        {
            self.finished = true;
        }
        // Unconstrained requests stop when the intention is done.
        if self.session.is_none() && self.llm_state.finished() {
            self.finished = true;
            self.completed = true;
        }
        emitted_from
    }

    /// Runs one forced-injection pass: compute the remaining token budget,
    /// inject the forced continuation, account tokens/chars/time. Returns
    /// `true` when the lane has reached its token cap (the caller marks it
    /// finished).
    fn inject_forced(&mut self, ctx: &ForcedContext<'_>) -> bool {
        let budget = self
            .max_tokens
            .saturating_sub(self.sampled_tokens + self.forced_tokens);
        if budget == 0 {
            // Cap already reached: inject nothing (under either policy).
            return true;
        }
        let start = Instant::now();
        let session = self
            .session
            .as_mut()
            .expect("inject_forced runs on constrained lanes")
            .as_mut();
        let (tokens, chars) = inject(ctx, session, &mut self.llm_state, &mut self.output, budget);
        self.forced_time += start.elapsed();
        self.forced_tokens += tokens;
        self.forced_chars += chars;
        self.sampled_tokens + self.forced_tokens >= self.max_tokens
    }
}

/// Injects the grammar-forced continuation through `session` without
/// sampling. Returns the number of injected tokens and bytes (`(0, 0)` when
/// nothing is forced or the backend does not expose forced text).
///
/// Under the `Engine` policy the forced bytes are re-tokenized
/// ([`BackendSession::find_jump_forward_tokens`], the longest-prefix token
/// cover) and accepted token by token, capped at `token_budget` (the lane's
/// remaining `max_tokens` allowance); every injected token is a rollback
/// unit exactly like a sampled one. Under the `Matcher` policy the whole run
/// is accepted as one raw byte unit. In both cases the simulated model is
/// re-conditioned on the forced text so the following proposals continue
/// after it.
fn inject(
    ctx: &ForcedContext<'_>,
    session: &mut dyn BackendSession,
    llm_state: &mut LlmRequestState,
    output: &mut Vec<u8>,
    token_budget: usize,
) -> (usize, usize) {
    match ctx.policy {
        JumpForwardPolicy::Off => (0, 0),
        JumpForwardPolicy::Matcher => {
            let forced = session.find_jump_forward();
            if forced.is_empty() || !session.accept_bytes(&forced) {
                return (0, 0);
            }
            output.extend_from_slice(&forced);
            llm_state.advance_bytes(&forced);
            (0, forced.len())
        }
        JumpForwardPolicy::Engine => {
            let sorted = ctx.sorted.expect("engine policy builds the sorted index");
            let run = session.find_jump_forward_tokens(ctx.vocab, sorted);
            let mut injected_tokens = 0;
            let mut injected_bytes = 0;
            for &token in run.tokens.iter().take(token_budget) {
                // Forced bytes are the unique allowed continuation, so every
                // cover token is admitted; a rejection (a backend bug) stops
                // the injection and leaves the lane to ordinary sampling.
                if !session.accept_token(token) {
                    break;
                }
                let bytes = ctx.vocab.token_bytes(token);
                output.extend_from_slice(bytes);
                llm_state.advance(token);
                injected_tokens += 1;
                injected_bytes += bytes.len();
            }
            (injected_tokens, injected_bytes)
        }
    }
}
