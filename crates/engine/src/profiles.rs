//! Model / hardware latency profiles for the simulated serving engine.
//!
//! The paper's end-to-end numbers are measured on real GPUs (H100, RTX 4090,
//! Apple M3 Max, iPhone 14 Pro Max). This reproduction replaces the GPU with
//! a calibrated latency model (see DESIGN.md, substitution 2): each profile
//! states how long one decoding step takes at a given batch size and how long
//! prefill takes per prompt token. The engine then *actually spends* that
//! time on a worker thread, so CPU/GPU overlap is real concurrency, just
//! against a synthetic GPU.
//!
//! The absolute values are taken from published throughput figures for the
//! corresponding model/hardware pairs and are only meant to be plausible;
//! every experiment reports relative behaviour.

use std::time::Duration;

/// A latency profile for one (model, hardware) pair.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelProfile {
    /// Human-readable name, e.g. `"Llama-3.1-8B on H100"`.
    pub name: String,
    /// Base time for one decoding step at batch size 1.
    pub decode_base: Duration,
    /// Additional decoding time per extra sequence in the batch (crude linear
    /// model of batching efficiency).
    pub decode_per_extra_seq: Duration,
    /// Prefill time per prompt token (for the whole batch, amortized).
    pub prefill_per_token: Duration,
    /// Multiplier applied to all durations (benchmarks use < 1.0 to keep the
    /// harness fast; 1.0 reproduces realistic wall-clock times).
    pub time_scale: f64,
}

impl ModelProfile {
    /// Time the simulated GPU spends on one decoding step for `batch_size`
    /// concurrent sequences.
    pub fn decode_step_time(&self, batch_size: usize) -> Duration {
        let extra = batch_size.saturating_sub(1) as u32;
        let raw = self.decode_base + self.decode_per_extra_seq * extra;
        raw.mul_f64(self.time_scale.max(0.0))
    }

    /// Time the simulated GPU spends prefilling a prompt of `prompt_tokens`
    /// tokens.
    pub fn prefill_time(&self, prompt_tokens: usize) -> Duration {
        (self.prefill_per_token * prompt_tokens as u32).mul_f64(self.time_scale.max(0.0))
    }

    /// Returns a copy of the profile with a different time scale.
    pub fn scaled(&self, time_scale: f64) -> ModelProfile {
        ModelProfile {
            time_scale,
            ..self.clone()
        }
    }

    /// Llama-3.1-8B-Instruct served on an NVIDIA H100 (the §4.2 setting):
    /// ≈6 ms per output token at batch 1, mild degradation with batch size.
    pub fn llama31_8b_h100() -> ModelProfile {
        ModelProfile {
            name: "Llama-3.1-8B (H100)".into(),
            decode_base: Duration::from_micros(6000),
            decode_per_extra_seq: Duration::from_micros(200),
            prefill_per_token: Duration::from_micros(60),
            time_scale: 1.0,
        }
    }

    /// DeepSeek-V2-Lite 16B MoE on an H100 (Table 1's second row): faster per
    /// token thanks to the MoE's smaller active parameter count.
    pub fn deepseek_v2_lite_h100() -> ModelProfile {
        ModelProfile {
            name: "DeepSeek-V2-Lite-16B-MoE (H100)".into(),
            decode_base: Duration::from_micros(4500),
            decode_per_extra_seq: Duration::from_micros(150),
            prefill_per_token: Duration::from_micros(55),
            time_scale: 1.0,
        }
    }

    /// Llama-3.1-8B-Instruct on an RTX 4090 (the §4.1 mask-generation
    /// machine).
    pub fn llama31_8b_rtx4090() -> ModelProfile {
        ModelProfile {
            name: "Llama-3.1-8B (RTX 4090)".into(),
            decode_base: Duration::from_micros(9000),
            decode_per_extra_seq: Duration::from_micros(350),
            prefill_per_token: Duration::from_micros(90),
            time_scale: 1.0,
        }
    }

    /// 4-bit Llama-3.1-8B running in a browser on an Apple M3 Max
    /// (Figure 12, WebLLM): ≈30 ms per output token.
    pub fn llama31_8b_4bit_m3max() -> ModelProfile {
        ModelProfile {
            name: "Llama-3.1-8B 4-bit (M3 Max, WebLLM)".into(),
            decode_base: Duration::from_micros(29_700),
            decode_per_extra_seq: Duration::from_micros(2_000),
            prefill_per_token: Duration::from_micros(2_700),
            time_scale: 1.0,
        }
    }

    /// 4-bit Qwen-2.5-0.5B on an iPhone 14 Pro Max (Figure 12): ≈47 ms per
    /// output token.
    pub fn qwen25_05b_iphone() -> ModelProfile {
        ModelProfile {
            name: "Qwen-2.5-0.5B 4-bit (iPhone 14 Pro Max)".into(),
            decode_base: Duration::from_micros(47_300),
            decode_per_extra_seq: Duration::from_micros(4_000),
            prefill_per_token: Duration::from_micros(1_900),
            time_scale: 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_time_grows_with_batch_size() {
        let p = ModelProfile::llama31_8b_h100();
        assert!(p.decode_step_time(32) > p.decode_step_time(1));
        assert_eq!(p.decode_step_time(1), Duration::from_micros(6000));
    }

    #[test]
    fn time_scale_shrinks_durations() {
        let p = ModelProfile::llama31_8b_h100().scaled(0.01);
        assert_eq!(p.decode_step_time(1), Duration::from_micros(60));
        assert_eq!(p.prefill_time(100), Duration::from_micros(60));
    }

    #[test]
    fn device_profiles_are_ordered_sensibly() {
        // Server GPU is faster than laptop, which is faster than phone.
        let h100 = ModelProfile::llama31_8b_h100().decode_step_time(1);
        let m3 = ModelProfile::llama31_8b_4bit_m3max().decode_step_time(1);
        let iphone = ModelProfile::qwen25_05b_iphone().decode_step_time(1);
        assert!(h100 < m3);
        assert!(m3 < iphone);
    }
}
