//! Simulated LLM serving engine for the XGrammar reproduction.
//!
//! This crate provides the end-to-end substrate behind the paper's serving
//! experiments (§4.2, §4.4, Appendix B/C):
//!
//! * [`ModelProfile`] — calibrated latency models standing in for the real
//!   GPUs (H100, RTX 4090, Apple M3 Max, iPhone),
//! * [`SimulatedLlm`] — a deterministic token proposer with configurable
//!   formatting-error injection,
//! * [`ServingEngine`] — fixed-batch decoding with serial or overlapped
//!   (CPU ∥ GPU) execution of grammar work; lanes choose their constraint
//!   via [`LaneConstraint`] (unconstrained prose, a full grammar, or a
//!   structural tag mixing free text with constrained tool calls),
//! * [`run_accuracy_experiment`] — the Table 4 syntactic-correctness
//!   experiment,
//! * engine-level jump-forward decoding ([`JumpForwardPolicy`]): grammar-
//!   forced text is re-tokenized and injected into the decode loop without
//!   sampling, with forced tokens and time accounted separately in
//!   [`BatchMetrics`] (paper Appendix B / Figure 11).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod accuracy;
mod engine;
mod llm;
mod profiles;

pub use accuracy::{run_accuracy_experiment, AccuracyResult, AccuracyTask};
pub use engine::{
    BatchMetrics, EngineRequest, ExecutionMode, JumpForwardPolicy, LaneConstraint, RequestResult,
    ServingEngine,
};
pub use llm::{LlmBehavior, LlmRequestState, SimulatedLlm};
pub use profiles::ModelProfile;
