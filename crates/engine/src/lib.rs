//! Simulated LLM serving engine for the XGrammar reproduction.
//!
//! This crate provides the end-to-end substrate behind the paper's serving
//! experiments (§4.2, §4.4, Appendix B/C):
//!
//! * [`ModelProfile`] — calibrated latency models standing in for the real
//!   GPUs (H100, RTX 4090, Apple M3 Max, iPhone),
//! * [`SimulatedLlm`] — a deterministic token proposer with configurable
//!   formatting-error injection,
//! * [`ContinuousScheduler`] — the continuous-batching serving core
//!   (started via [`ServingEngine::serve`]): a bounded request queue feeds
//!   admission workers that compile grammars off the decode hot path, a
//!   persistent decode loop admits lanes mid-batch and retires them on
//!   termination, and mask generation overlaps the simulated GPU phase via
//!   double-buffering; each request streams its bytes through a
//!   [`StreamingRequest`] handle,
//! * [`ServingEngine::run_batch`] — one-shot batch decoding, now a thin
//!   wrapper over the scheduler (byte-identical to the fixed-membership
//!   reference loop [`ServingEngine::run_batch_fixed`]); lanes choose their
//!   constraint via [`LaneConstraint`] (unconstrained prose, a full grammar,
//!   or a structural tag mixing free text with constrained tool calls),
//! * [`run_accuracy_experiment`] — the Table 4 syntactic-correctness
//!   experiment,
//! * speculative draft verification ([`ServingEngine::verify_draft`]): the
//!   longest grammar-valid prefix of a k-token draft accepted in one call,
//!   every accepted token an individual rollback unit,
//! * engine-level jump-forward decoding ([`JumpForwardPolicy`], default
//!   [`JumpForwardPolicy::Engine`]): grammar-forced text is re-tokenized and
//!   injected into the decode loop without sampling, with forced tokens and
//!   time accounted separately in [`BatchMetrics`] (paper Appendix B /
//!   Figure 11).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod accuracy;
mod engine;
mod lane;
mod llm;
mod profiles;
mod scheduler;

pub use accuracy::{run_accuracy_experiment, AccuracyResult, AccuracyTask};
pub use engine::{
    BatchMetrics, DraftVerification, EngineRequest, ExecutionMode, JumpForwardPolicy,
    LaneConstraint, RequestResult, ServingEngine,
};
pub use llm::{LlmBehavior, LlmRequestState, SimulatedLlm};
pub use profiles::ModelProfile;
pub use scheduler::{
    ContinuousScheduler, FinishedRequest, LaneTiming, SchedulerConfig, SchedulerMetrics,
    StreamEvent, StreamingRequest, SubmitError,
};
